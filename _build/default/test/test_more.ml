(* Third test wave: multi-root distributed construction (the ring GST
   case), engine bookkeeping corners, bitvec/rng conversions, GST
   override mechanics, recruiting result accessors, and layering with
   several sources. *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_coding
open Rn_broadcast

let rng seed = Rng.create ~seed

(* ------------------------------------------------------------------ *)
(* Multi-root distributed construction (what every ring relies on) *)

let test_distributed_multi_root () =
  for seed = 1 to 5 do
    let g = Topo.grid ~w:7 ~h:4 in
    let roots = [| 0; 1; 2; 3; 4; 5; 6 |] in
    let r =
      Gst_distributed.construct ~learn_vd:true ~rng:(rng (500 + seed)) ~graph:g
        ~roots ()
    in
    (match Gst.validate r.Gst_distributed.gst with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    Alcotest.(check int) "spans" (Graph.n g) (Gst.size r.Gst_distributed.gst);
    Alcotest.(check (array int)) "roots preserved" roots
      (Gst.roots r.Gst_distributed.gst);
    Alcotest.(check (array int)) "vd matches"
      (Gst.virtual_distances r.Gst_distributed.gst)
      r.Gst_distributed.vd
  done

let test_distributed_band_with_multi_roots () =
  (* A two-ring scenario built by hand: the second band's GST hangs off
     all of the first band's outer boundary. *)
  let g = Topo.grid ~w:4 ~h:6 in
  let levels = Bfs.levels g ~src:0 in
  let rings = Rings.decompose ~levels ~width:3 in
  (* max level 8 with width 3: three rings. *)
  Alcotest.(check int) "three rings" 3 rings.Rings.count;
  let ring1 = Rings.ring_levels rings 1 in
  let roots = Rings.roots rings 1 in
  Alcotest.(check bool) "several roots" true (Array.length roots > 1);
  let r =
    Gst_distributed.construct ~layering:(Gst_distributed.Given_layering ring1)
      ~learn_vd:true ~rng:(rng 77) ~graph:g ~roots ()
  in
  match Gst.validate r.Gst_distributed.gst with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Engine bookkeeping corners *)

let test_engine_all_sleep_round () =
  let stats = Rn_radio.Engine.fresh_stats () in
  let protocol =
    {
      Rn_radio.Engine.decide = (fun ~round:_ ~node:_ -> Rn_radio.Engine.Sleep);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  ignore
    (Rn_radio.Engine.run ~stats ~graph:(Topo.path 4)
       ~detection:Rn_radio.Engine.Collision_detection ~protocol
       ~stop:(fun ~round:_ -> false)
       ~max_rounds:5 ());
  Alcotest.(check int) "rounds counted" 5 stats.Rn_radio.Engine.rounds;
  Alcotest.(check int) "no busy rounds" 0 stats.Rn_radio.Engine.busy_rounds;
  Alcotest.(check int) "no transmissions" 0 stats.Rn_radio.Engine.transmissions

let test_engine_stop_at_zero () =
  let protocol =
    {
      Rn_radio.Engine.decide = (fun ~round:_ ~node:_ -> Rn_radio.Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let outcome =
    Rn_radio.Engine.run ~graph:(Topo.path 2)
      ~detection:Rn_radio.Engine.Collision_detection ~protocol
      ~stop:(fun ~round:_ -> true)
      ~max_rounds:10 ()
  in
  Alcotest.(check int) "zero rounds" 0 (Rn_radio.Engine.completed_exn outcome)

(* ------------------------------------------------------------------ *)
(* Bitvec / Rng conversions *)

let test_bitvec_bools_roundtrip () =
  let bs = [ true; false; false; true; true ] in
  Alcotest.(check (list bool)) "roundtrip" bs (Bitvec.to_bools (Bitvec.of_bools bs));
  Alcotest.(check (list bool)) "empty" [] (Bitvec.to_bools (Bitvec.of_bools []))

let test_bitvec_copy_independent () =
  let a = Bitvec.of_string "1010" in
  let b = Bitvec.copy a in
  Bitvec.set b 1 true;
  Alcotest.(check string) "original untouched" "1010" (Bitvec.to_string a);
  Alcotest.(check string) "copy changed" "1110" (Bitvec.to_string b)

let test_rng_sample_edges () =
  let r = rng 1 in
  Alcotest.(check (array int)) "k=0" [||] (Rng.sample_without_replacement r 0 5);
  let all = Rng.sample_without_replacement r 5 5 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n permutation" [| 0; 1; 2; 3; 4 |] sorted

(* ------------------------------------------------------------------ *)
(* GST override mechanics *)

let test_override_makes_head () =
  let g = Topo.path 4 in
  let levels = [| 0; 1; 2; 3 |] and parents = [| -1; 0; 1; 2 |] in
  let ranks = [| 1; 1; 1; 1 |] in
  let head_override = [| false; false; true; false |] in
  let t = Gst.make ~graph:g ~levels ~parents ~ranks ~head_override () in
  Alcotest.(check bool) "override is head" true (Gst.is_stretch_head t 2);
  Alcotest.(check (list int)) "stretch split at override" [ 0; 1 ]
    (Gst.stretch_members t 0);
  Alcotest.(check (list int)) "new stretch" [ 2; 3 ] (Gst.stretch_members t 2);
  (* Virtual distances change accordingly: members of the second stretch
     are one fast edge from node 2, which is reached through G. *)
  let d = Gst.virtual_distances t in
  Alcotest.(check (array int)) "vd with split" [| 0; 1; 2; 3 |] d

let test_repair_is_idempotent () =
  let g = Topo.random_connected ~rng:(rng 31) ~n:40 ~extra:50 in
  let t = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
  let t2 = Gst.repair_wave_safety t in
  Alcotest.(check int) "no new overrides" (Gst.override_count t)
    (Gst.override_count t2)

(* ------------------------------------------------------------------ *)
(* Recruiting accessors *)

let test_recruiting_one_class_names_blue () =
  let g = Graph.create ~n:2 ~edges:[ (0, 1) ] in
  let o =
    Recruiting.run_standalone ~rng:(rng 2) ~params:Params.default ~graph:g
      ~reds:[| 0 |] ~blues:[| 1 |] ()
  in
  Alcotest.(check bool) "recruited" true (o.Recruiting.recruited = [ (1, 0) ]);
  (* Re-run embedded to inspect classes. *)
  let t =
    Recruiting.create ~rng:(rng 2) ~params:Params.default ~scale_n:2 ~graph:g
      ~reds:[| 0 |] ~blues:[| 1 |] ()
  in
  let protocol =
    {
      Rn_radio.Engine.decide = (fun ~round:_ ~node -> Recruiting.decide t ~node);
      deliver = (fun ~round:_ ~node r -> Recruiting.deliver t ~node r);
    }
  in
  ignore
    (Rn_radio.Engine.run ~graph:g
       ~detection:Rn_radio.Engine.No_collision_detection ~protocol
       ~after_round:(fun ~round:_ -> Recruiting.advance t)
       ~stop:(fun ~round:_ -> Recruiting.finished t)
       ~max_rounds:100_000 ());
  (match Recruiting.red_class t 0 with
  | Recruiting.One b -> Alcotest.(check int) "one names the blue" 1 b
  | Recruiting.Zero -> Alcotest.fail "red should have recruited"
  | Recruiting.Many -> Alcotest.fail "only one blue exists");
  Alcotest.(check (option int)) "parent" (Some 0) (Recruiting.parent_of t 1);
  Alcotest.(check (option bool)) "sees only-child" (Some false)
    (Recruiting.blue_sees_many t 1)

(* ------------------------------------------------------------------ *)
(* Layering with several sources; estimation on barbell *)

let test_collision_wave_multi_source () =
  let g = Topo.path 9 in
  let r = Layering.collision_wave ~graph:g ~sources:[| 0; 8 |] () in
  Alcotest.(check (array int)) "levels" (Bfs.multi_levels g ~sources:[| 0; 8 |])
    r.Layering.levels;
  Alcotest.(check int) "rounds = radius" 4 r.Layering.rounds

let test_estimate_barbell () =
  let g = Topo.barbell ~clique:6 ~bridge:9 in
  let r = Diameter_estimate.run ~graph:g ~source:0 () in
  let ecc = r.Diameter_estimate.eccentricity in
  Alcotest.(check bool) "within factor 2" true
    (r.Diameter_estimate.estimate >= ecc
    && r.Diameter_estimate.estimate <= 2 * ecc)

(* ------------------------------------------------------------------ *)
(* Gst_broadcast: decode rounds respect information causality *)

let test_decode_rounds_causal () =
  (* A node v cannot decode before round level(v) - 1: information travels
     one hop per round at best. *)
  let g = Topo.path 24 in
  let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
  let vd = Gst.virtual_distances gst in
  let msgs = [| Bitvec.random (rng 3) 16 |] in
  let r = Gst_broadcast.run ~rng:(rng 4) ~gst ~vd ~msgs ~sources:[| 0 |] () in
  Array.iteri
    (fun v dr ->
      if v > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "node %d causality" v)
          true
          (dr >= gst.Gst.levels.(v) - 1))
    r.Gst_broadcast.decode_round

(* ------------------------------------------------------------------ *)
(* Baselines sanity relations *)

let test_sequential_scales_linearly () =
  let g = Topo.grid ~w:5 ~h:4 in
  let r2 = Baselines.sequential_multi ~rng:(rng 5) ~graph:g ~source:0 ~k:2 () in
  let r8 = Baselines.sequential_multi ~rng:(rng 5) ~graph:g ~source:0 ~k:8 () in
  (* Same seed: the k=8 run repeats more broadcasts, so strictly longer. *)
  Alcotest.(check bool) "k=8 longer than k=2" true
    (r8.Baselines.rounds > r2.Baselines.rounds)

let test_routing_complete_rounds_ordered () =
  let g = Topo.path 10 in
  let r = Baselines.routing_multi ~rng:(rng 6) ~graph:g ~source:0 ~k:3 () in
  Alcotest.(check bool) "delivered" true r.Baselines.delivered;
  (* Completion can never precede distance-to-source rounds. *)
  Array.iteri
    (fun v c ->
      if v > 0 then Alcotest.(check bool) "causality" true (c >= v - 1))
    r.Baselines.complete_round

(* ------------------------------------------------------------------ *)
(* Reproducibility: equal seeds give identical runs *)

let test_full_pipeline_deterministic () =
  let g = Topo.cluster_path ~rng:(rng 60) ~clusters:4 ~size:6 ~p_intra:0.4 in
  let run () = Single_broadcast.run ~rng:(rng 61) ~graph:g ~source:0 () in
  let a = run () and b = run () in
  Alcotest.(check int) "same rounds" a.Single_broadcast.rounds_total
    b.Single_broadcast.rounds_total;
  Alcotest.(check int) "same ring count" a.Single_broadcast.ring_count
    b.Single_broadcast.ring_count;
  Alcotest.(check bool) "both delivered" true
    (a.Single_broadcast.delivered && b.Single_broadcast.delivered)

let test_multi_known_deterministic () =
  let g = Topo.grid ~w:5 ~h:4 in
  let run () = Multi_broadcast.known ~rng:(rng 62) ~graph:g ~source:0 ~k:5 () in
  let a = run () and b = run () in
  Alcotest.(check int) "same rounds" a.Multi_broadcast.rounds b.Multi_broadcast.rounds;
  Alcotest.(check (array int)) "same decode rounds" a.Multi_broadcast.decode_round
    b.Multi_broadcast.decode_round

(* ------------------------------------------------------------------ *)
(* Model fidelity: packets fit B = Theta(log n) bits *)

let test_construction_packets_fit_b () =
  (* Every packet of the GST construction carries at most two ids. *)
  let n = 1024 in
  let id = Ilog.clog n in
  let b = 4 + (2 * id) in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Format.asprintf "%a fits" Cmsg.pp m)
        true
        (Cmsg.bits ~n m <= b))
    [
      Cmsg.Beacon; Cmsg.Probe; Cmsg.Blue_here; Cmsg.Loner_here;
      Cmsg.Red_id 7; Cmsg.Claim { blue = 1; red = 2 };
      Cmsg.Confirm { red = 3; blue = 4 }; Cmsg.Sigma 5;
      Cmsg.Marked { red = 6; rank = 9 };
      Cmsg.Vd_label { from_node = 8; vd = 11 };
    ]

let test_batched_rlnc_headers_logarithmic () =
  (* Theorem 1.3 batches messages in groups of ceil(log n), so coded
     headers stay at Theta(log n) bits (footnote 5 / §3.4). *)
  let n = 512 in
  let batch = Ilog.clog n in
  let msgs =
    Multi_broadcast.random_messages (rng 50) ~k:batch ~msg_len:(4 * batch)
  in
  let p = Rlnc.source_packet ~msgs 0 in
  Alcotest.(check int) "header bits = batch size" batch
    (Rlnc.packet_bits p - (4 * batch));
  Alcotest.(check bool) "packet is O(log n) + payload" true
    (Rlnc.packet_bits p <= 5 * batch)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"bitvec of_bools/to_bools roundtrip" ~count:300
      (list_of_size (Gen.int_range 0 100) bool)
      (fun bs -> Bitvec.to_bools (Bitvec.of_bools bs) = bs);
    Test.make ~name:"popcount = number of true bools" ~count:300
      (list_of_size (Gen.int_range 0 100) bool)
      (fun bs ->
        Bitvec.popcount (Bitvec.of_bools bs)
        = List.length (List.filter (fun b -> b) bs));
    Test.make ~name:"regular bipartite has exact blue degrees" ~count:100
      (triple (int_range 1 12) (int_range 0 20) (int_range 0 3000))
      (fun (reds, blues, seed) ->
        let degree = 1 + (seed mod reds) in
        let g =
          Topo.bipartite_regular ~rng:(Rng.create ~seed) ~reds ~blues ~degree
        in
        let ok = ref true in
        for b = reds to reds + blues - 1 do
          if Graph.degree g b <> degree then ok := false
        done;
        !ok);
    Test.make ~name:"multi-root distributed GST validates" ~count:15
      (pair (int_range 4 30) (int_range 0 3000))
      (fun (n, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra:n in
        let nroots = 1 + (seed mod 3) in
        let roots = Array.init (min nroots n) (fun i -> i) in
        let r =
          Gst_distributed.construct ~rng:(Rng.create ~seed:(seed + 7)) ~graph:g
            ~roots ()
        in
        match Gst.validate r.Gst_distributed.gst with
        | Ok () -> true
        | Error _ -> false);
    Test.make ~name:"single broadcast reception causality" ~count:30
      (pair (int_range 2 40) (int_range 0 3000))
      (fun (n, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra:(n / 2) in
        let d = Decay.broadcast ~rng:(Rng.create ~seed:(seed + 1)) ~graph:g ~source:0 () in
        let levels = Bfs.levels g ~src:0 in
        let ok = ref true in
        Array.iteri
          (fun v rr -> if v > 0 && rr < levels.(v) - 1 then ok := false)
          d.Decay.received_round;
        !ok);
  ]

let () =
  Alcotest.run "more"
    [
      ( "multi_root",
        [
          Alcotest.test_case "distributed multi-root" `Slow
            test_distributed_multi_root;
          Alcotest.test_case "band with multiple roots" `Quick
            test_distributed_band_with_multi_roots;
        ] );
      ( "engine_corners",
        [
          Alcotest.test_case "all-sleep rounds" `Quick test_engine_all_sleep_round;
          Alcotest.test_case "stop at zero" `Quick test_engine_stop_at_zero;
        ] );
      ( "conversions",
        [
          Alcotest.test_case "bools roundtrip" `Quick test_bitvec_bools_roundtrip;
          Alcotest.test_case "copy independence" `Quick test_bitvec_copy_independent;
          Alcotest.test_case "sample edges" `Quick test_rng_sample_edges;
        ] );
      ( "gst_overrides",
        [
          Alcotest.test_case "override makes head" `Quick test_override_makes_head;
          Alcotest.test_case "repair idempotent" `Quick test_repair_is_idempotent;
        ] );
      ( "recruiting_accessors",
        [
          Alcotest.test_case "one-class blue id" `Quick
            test_recruiting_one_class_names_blue;
        ] );
      ( "layering_more",
        [
          Alcotest.test_case "collision wave multi-source" `Quick
            test_collision_wave_multi_source;
          Alcotest.test_case "estimate barbell" `Quick test_estimate_barbell;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "theorem 1.1 pipeline" `Quick
            test_full_pipeline_deterministic;
          Alcotest.test_case "theorem 1.2 run" `Quick test_multi_known_deterministic;
        ] );
      ( "packet_sizes",
        [
          Alcotest.test_case "construction packets fit B" `Quick
            test_construction_packets_fit_b;
          Alcotest.test_case "batched headers logarithmic" `Quick
            test_batched_rlnc_headers_logarithmic;
        ] );
      ( "causality",
        [
          Alcotest.test_case "decode rounds causal" `Quick test_decode_rounds_causal;
          Alcotest.test_case "sequential scales" `Quick test_sequential_scales_linearly;
          Alcotest.test_case "routing causal" `Quick test_routing_complete_rounds_ordered;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
