(* Second test wave: diameter estimation (footnote 2), strict-mode (full
   fixed budgets) runs, RLNC infection during live broadcasts
   (Definition 3.8 / Proposition 3.9), edge cases of rings/handoffs,
   multi-broadcast option coverage, the barbell generator, table
   rendering, and defensive argument checking across the API. *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_coding
open Rn_broadcast

let rng seed = Rng.create ~seed

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Diameter estimation (footnote 2) *)

let check_estimate g =
  let r = Diameter_estimate.run ~graph:g ~source:0 () in
  let ecc = r.Diameter_estimate.eccentricity in
  Alcotest.(check bool) "ecc <= estimate" true (r.Diameter_estimate.estimate >= ecc);
  Alcotest.(check bool) "estimate <= max(1, 2 ecc)" true
    (r.Diameter_estimate.estimate <= max 1 (2 * ecc));
  Alcotest.(check (array int)) "levels learned" (Bfs.levels g ~src:0)
    r.Diameter_estimate.levels;
  (* O(D) rounds: generous constant-7 check plus the doubling overhead. *)
  Alcotest.(check bool) "O(D) rounds" true
    (r.Diameter_estimate.rounds <= (7 * max 1 ecc) + 16)

let test_diameter_estimate_shapes () =
  List.iter check_estimate
    [
      Topo.path 1; Topo.path 2; Topo.path 17; Topo.path 64; Topo.star 12;
      Topo.complete 9; Topo.grid ~w:7 ~h:3; Topo.cycle 21;
      Topo.balanced_tree ~arity:3 ~depth:3;
    ]

let test_diameter_estimate_random () =
  for seed = 1 to 10 do
    check_estimate (Topo.random_connected ~rng:(rng seed) ~n:50 ~extra:40)
  done

let test_diameter_estimate_power_of_two_boundary () =
  (* ecc exactly a power of two and one above/below it. *)
  List.iter (fun n -> check_estimate (Topo.path n)) [ 8; 9; 16; 17; 33 ]

(* ------------------------------------------------------------------ *)
(* Strict mode: fixed budgets, no adaptive early exit *)

let strict_params = { Params.default with Params.adaptive = false }

let test_strict_recruiting () =
  let g = Topo.bipartite_random ~rng:(rng 3) ~reds:4 ~blues:8 ~p:0.5 in
  let o =
    Recruiting.run_standalone ~rng:(rng 4) ~params:strict_params ~graph:g
      ~reds:[| 0; 1; 2; 3 |]
      ~blues:(Array.init 8 (fun i -> 4 + i))
      ()
  in
  Alcotest.(check bool) "covered" true o.Recruiting.all_covered;
  (* Strict runs pay the full iteration budget. *)
  let n = Graph.n g in
  let ladder = Params.phase_len ~n in
  Alcotest.(check int) "full budget used"
    (Params.recruit_iterations strict_params ~n * (2 + ladder))
    o.Recruiting.rounds

let test_strict_decay_layering () =
  let g = Topo.path 6 in
  let r = Layering.decay_bfs ~params:strict_params ~rng:(rng 5) ~graph:g ~sources:[| 0 |] () in
  Alcotest.(check (array int)) "levels" (Bfs.levels g ~src:0) r.Layering.levels

let test_strict_gst_small () =
  let g = Topo.path 5 in
  let r =
    Gst_distributed.construct ~params:strict_params ~rng:(rng 6) ~graph:g
      ~roots:[| 0 |] ()
  in
  match Gst.validate r.Gst_distributed.gst with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Infection (Definition 3.8 / Proposition 3.9) during a live broadcast *)

let test_infection_closure_after_broadcast () =
  let g = Topo.grid ~w:5 ~h:4 in
  let k = 4 in
  let r = Multi_broadcast.known ~rng:(rng 7) ~graph:g ~source:0 ~k () in
  Alcotest.(check bool) "delivered" true r.Multi_broadcast.delivered;
  (* Delivery = full rank everywhere = infected by every nonzero mu; spot
     check the equivalence through a fresh decoder fed source packets. *)
  let msgs = Multi_broadcast.random_messages (rng 8) ~k ~msg_len:8 in
  let d = Rlnc.create ~k ~msg_len:8 in
  Rlnc.seed_with_sources d ~msgs;
  for code = 1 to (1 lsl k) - 1 do
    let mu = Bitvec.create k in
    for b = 0 to k - 1 do
      if (code lsr b) land 1 = 1 then Bitvec.set mu b true
    done;
    Alcotest.(check bool) "full rank infects all mu" true (Rlnc.infected d mu)
  done

let test_infection_halfway () =
  (* Proposition 3.9 direction: receiving a packet from an infected node
     infects with probability >= 1/2; statistically check on the encoder. *)
  let k = 6 in
  let r = rng 9 in
  let msgs = Multi_broadcast.random_messages r ~k ~msg_len:8 in
  let sender = Rlnc.create ~k ~msg_len:8 in
  Rlnc.seed_with_sources sender ~msgs;
  let mu = Bitvec.random r k in
  if Bitvec.is_zero mu then Bitvec.set mu 0 true;
  let hits = ref 0 and trials = 2000 in
  for _ = 1 to trials do
    match Rlnc.encode r sender with
    | Some p -> if Bitvec.dot p.Rlnc.coeffs mu then incr hits
    | None -> ()
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "non-orthogonal w.p. ~1/2" true (rate > 0.42 && rate < 0.58)

(* ------------------------------------------------------------------ *)
(* Rings and pipelines: edge cases *)

let test_rings_width_larger_than_depth () =
  let levels = [| 0; 1; 2 |] in
  let t = Rings.decompose ~levels ~width:10 in
  Alcotest.(check int) "single ring" 1 t.Rings.count;
  Alcotest.(check (array int)) "outer boundary empty" [||]
    (Rings.outer_boundary t 0)

let test_rings_unreachable_nodes () =
  let levels = [| 0; 1; -1; 2 |] in
  let t = Rings.decompose ~levels ~width:2 in
  Alcotest.(check int) "unreachable ring -1" (-1) t.Rings.ring_of.(2);
  Alcotest.(check int) "count from max level" 2 t.Rings.count

let test_single_broadcast_one_node () =
  let r = Single_broadcast.run ~rng:(rng 10) ~graph:(Topo.path 1) ~source:0 () in
  Alcotest.(check bool) "trivially delivered" true r.Single_broadcast.delivered

let test_single_broadcast_assumption_free () =
  (* The estimate_diameter variant needs no knowledge of D at all. *)
  let g = Topo.cluster_path ~rng:(rng 33) ~clusters:5 ~size:6 ~p_intra:0.4 in
  let r =
    Single_broadcast.run ~estimate_diameter:true ~rng:(rng 34) ~graph:g
      ~source:0 ()
  in
  Alcotest.(check bool) "delivered" true r.Single_broadcast.delivered;
  (* The estimator costs more than the bare D-round wave but stays O(D). *)
  let d = Bfs.eccentricity g 0 in
  Alcotest.(check bool) "layering O(D)" true
    (r.Single_broadcast.rounds_layering <= (7 * d) + 16)

let test_single_broadcast_barbell () =
  let g = Topo.barbell ~clique:8 ~bridge:12 in
  let r = Single_broadcast.run ~rng:(rng 11) ~graph:g ~source:0 () in
  Alcotest.(check bool) "delivered" true r.Single_broadcast.delivered

let test_multi_unknown_batch_sizes () =
  let g = Topo.cluster_path ~rng:(rng 12) ~clusters:4 ~size:6 ~p_intra:0.5 in
  List.iter
    (fun batch_size ->
      let r =
        Multi_broadcast.unknown ~batch_size ~rng:(rng (13 + batch_size))
          ~graph:g ~source:0 ~k:9 ()
      in
      Alcotest.(check bool) "delivered" true r.Multi_broadcast.delivered;
      Alcotest.(check int) "batch count" (Ilog.cdiv 9 batch_size)
        r.Multi_broadcast.batch_count)
    [ 1; 3; 9; 20 ]

let test_multi_unknown_assumption_free () =
  let g = Topo.grid ~w:8 ~h:3 in
  let r =
    Multi_broadcast.unknown ~estimate_diameter:true ~rng:(rng 35) ~graph:g
      ~source:0 ~k:6 ()
  in
  Alcotest.(check bool) "delivered" true r.Multi_broadcast.delivered;
  Alcotest.(check bool) "payloads" true r.Multi_broadcast.payloads_ok

let test_multi_unknown_ring_choices () =
  let g = Topo.grid ~w:9 ~h:3 in
  List.iter
    (fun rings ->
      let r = Multi_broadcast.unknown ~rings ~rng:(rng 17) ~graph:g ~source:0 ~k:5 () in
      Alcotest.(check bool) "delivered" true r.Multi_broadcast.delivered)
    [ Single_broadcast.Auto; Single_broadcast.Ring_count 2; Single_broadcast.Ring_width 4 ]

let test_handoff_no_holders () =
  let g = Topo.path 4 in
  let r = Rings.handoff_single ~rng:(rng 18) ~graph:g ~holders:[||] ~receivers:[| 1 |] () in
  Alcotest.(check bool) "undeliverable" false r.Rings.delivered

let test_handoff_no_receivers () =
  let g = Topo.path 4 in
  let r = Rings.handoff_single ~rng:(rng 19) ~graph:g ~holders:[| 0 |] ~receivers:[||] () in
  Alcotest.(check bool) "vacuously done" true r.Rings.delivered;
  Alcotest.(check int) "zero rounds" 0 r.Rings.rounds

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let test_jammed_decay_delivers () =
  let g = Topo.grid ~w:6 ~h:6 in
  let r = rng 30 in
  let jammers =
    Faults.pick_jammers ~rng:(Rng.split r) ~n:(Graph.n g) ~count:4
      ~exclude:[| 0 |]
  in
  let d =
    Decay.broadcast
      ~faults:{ Faults.jammers; p = 0.3 }
      ~rng:(Rng.split r) ~graph:g ~source:0 ()
  in
  match d.Decay.outcome with
  | Rn_radio.Engine.Completed _ -> ()
  | Rn_radio.Engine.Out_of_budget _ -> Alcotest.fail "jamming broke delivery"

let test_jammers_exclude_source () =
  let r = rng 31 in
  let jammers = Faults.pick_jammers ~rng:r ~n:10 ~count:9 ~exclude:[| 0 |] in
  Alcotest.(check int) "count" 9 (Array.length jammers);
  Alcotest.(check bool) "source excluded" false (Array.mem 0 jammers);
  Alcotest.(check bool) "too many raises" true
    (raises_invalid (fun () ->
         Faults.pick_jammers ~rng:r ~n:10 ~count:10 ~exclude:[| 0 |]))

let test_jammer_p_zero_is_identity () =
  let g = Topo.path 10 in
  let run faults seed =
    let d = Decay.broadcast ?faults ~rng:(rng seed) ~graph:g ~source:0 () in
    d.Decay.received_round
  in
  (* p = 0 jamming must not change behaviour given the same protocol seed
     (the wrapper only consumes randomness from its own split stream). *)
  let plain = run None 40 in
  let jammed = run (Some { Faults.jammers = [| 3; 7 |]; p = 0.0 }) 40 in
  Alcotest.(check (array int)) "identical" plain jammed

(* ------------------------------------------------------------------ *)
(* Barbell generator *)

let test_barbell_structure () =
  let g = Topo.barbell ~clique:4 ~bridge:3 in
  Alcotest.(check int) "n" 11 (Graph.n g);
  (* 2 * C(4,2) + 4 path edges *)
  Alcotest.(check int) "m" 16 (Graph.m g);
  Alcotest.(check bool) "connected" true (Bfs.is_connected g);
  Alcotest.(check int) "diameter" 6 (Bfs.diameter g)

let test_barbell_zero_bridge () =
  let g = Topo.barbell ~clique:3 ~bridge:0 in
  Alcotest.(check int) "n" 6 (Graph.n g);
  Alcotest.(check bool) "connected" true (Bfs.is_connected g);
  Alcotest.(check int) "diameter" 3 (Bfs.diameter g)

let test_bipartite_regular () =
  let g = Topo.bipartite_regular ~rng:(rng 20) ~reds:6 ~blues:14 ~degree:3 in
  Alcotest.(check int) "n" 20 (Graph.n g);
  for b = 6 to 19 do
    Alcotest.(check int) "blue degree" 3 (Graph.degree g b)
  done;
  List.iter
    (fun (u, v) -> Alcotest.(check bool) "crossing" true (u < 6 && v >= 6))
    (Graph.edges g)

let test_step_reset_delivery () =
  (* §3.4 strips: buffer resets every c.log^2 n rounds keep delivering. *)
  let g = Topo.grid ~w:6 ~h:5 in
  let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
  let vd = Gst.virtual_distances gst in
  let l = Ilog.clog (Graph.n g) in
  let msgs = Multi_broadcast.random_messages (rng 21) ~k:4 ~msg_len:16 in
  let r =
    Gst_broadcast.run ~step_reset:(8 * l * l) ~rng:(rng 22) ~gst ~vd ~msgs
      ~sources:[| 0 |] ()
  in
  (match r.Gst_broadcast.outcome with
  | Rn_radio.Engine.Completed _ -> ()
  | Rn_radio.Engine.Out_of_budget _ -> Alcotest.fail "did not complete");
  Alcotest.(check bool) "payloads" true r.Gst_broadcast.payloads_ok

(* ------------------------------------------------------------------ *)
(* Table rendering *)

let test_table_renders () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_int_row t ("y", [ 22 ]);
  (* Rendering goes to stdout; just assert the structure checks. *)
  Alcotest.(check bool) "bad row rejected" true
    (raises_invalid (fun () -> Table.add_row t [ "only-one" ]));
  Alcotest.(check string) "cell_f integer" "123" (Table.cell_f 123.0);
  Alcotest.(check string) "cell_f small" "1.23" (Table.cell_f 1.234);
  Alcotest.(check string) "cell_f mid" "45.7" (Table.cell_f 45.67);
  Alcotest.(check string) "cell_f big" "4567" (Table.cell_f 4567.2)

let test_cmsg_pp () =
  let show m = Format.asprintf "%a" Cmsg.pp m in
  Alcotest.(check string) "beacon" "Beacon" (show Cmsg.Beacon);
  Alcotest.(check string) "confirm" "Confirm{red=1; blue=2}"
    (show (Cmsg.Confirm { red = 1; blue = 2 }));
  Alcotest.(check string) "vd" "Vd{from=3; vd=4}"
    (show (Cmsg.Vd_label { from_node = 3; vd = 4 }))

(* ------------------------------------------------------------------ *)
(* Defensive argument checking *)

let test_invalid_arguments () =
  let g = Topo.path 4 in
  Alcotest.(check bool) "decay bad source" true
    (raises_invalid (fun () -> Decay.broadcast ~rng:(rng 1) ~graph:g ~source:9 ()));
  Alcotest.(check bool) "probability bad ladder" true
    (raises_invalid (fun () -> Decay.probability ~ladder:0 3));
  Alcotest.(check bool) "gst_broadcast no messages" true
    (raises_invalid (fun () ->
         let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
         Gst_broadcast.run ~rng:(rng 1) ~gst ~vd:(Gst.virtual_distances gst)
           ~msgs:[||] ~sources:[| 0 |] ()));
  Alcotest.(check bool) "multi known k=0" true
    (raises_invalid (fun () ->
         Multi_broadcast.known ~rng:(rng 1) ~graph:g ~source:0 ~k:0 ()));
  Alcotest.(check bool) "rings width 0" true
    (raises_invalid (fun () -> Rings.decompose ~levels:[| 0; 1 |] ~width:0));
  Alcotest.(check bool) "barbell bad" true
    (raises_invalid (fun () -> Topo.barbell ~clique:0 ~bridge:1));
  Alcotest.(check bool) "gst make length" true
    (raises_invalid (fun () ->
         Gst.make ~graph:g ~levels:[| 0 |] ~parents:[| -1 |] ~ranks:[| 1 |] ()));
  Alcotest.(check bool) "fec empty batch" true
    (raises_invalid (fun () ->
         Rings.handoff_fec ~rng:(rng 1) ~graph:g ~holders:[| 0 |]
           ~receivers:[| 1 |] ~msgs:[||] ()));
  Alcotest.(check bool) "estimate empty graph" true
    (raises_invalid (fun () ->
         Diameter_estimate.run ~graph:(Graph.create ~n:0 ~edges:[]) ~source:0 ()))

(* ------------------------------------------------------------------ *)
(* Schedule structural property: fast waves never collide at interiors *)

let test_fast_wave_collision_freedom () =
  (* Simulate the fast slots structurally: in every fast round, for every
     stretch-interior node, exactly one of its upper same-rank neighbors
     (its parent) transmits — the content of Lemma 3.5 given wave safety. *)
  for seed = 1 to 10 do
    let g = Topo.random_connected ~rng:(rng (100 + seed)) ~n:60 ~extra:80 in
    let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
    let clogn = Ilog.clog 60 in
    for round = 0 to (12 * clogn) - 1 do
      if round mod 2 = 0 then
        Array.iteri
          (fun u p ->
            if p >= 0 && not (Gst.is_stretch_head gst u) then begin
              (* u expects its parent's slot to be clean *)
              let r = gst.Gst.ranks.(u) in
              if
                Gst_broadcast.fast_slot ~clogn ~level:gst.Gst.levels.(p) ~rank:r
                  ~round
              then begin
                let transmitters =
                  Graph.fold_neighbors g u
                    (fun acc w ->
                      if
                        Gst.in_forest gst w
                        && Gst_broadcast.fast_slot ~clogn
                             ~level:gst.Gst.levels.(w) ~rank:gst.Gst.ranks.(w)
                             ~round
                      then acc + 1
                      else acc)
                    0
                in
                Alcotest.(check int)
                  (Printf.sprintf "seed %d round %d node %d" seed round u)
                  1 transmitters
              end
            end)
          gst.Gst.parents
    done
  done

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"diameter estimate within factor 2" ~count:40
      (pair (int_range 2 60) (int_range 0 5000))
      (fun (n, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra:(n / 2) in
        let r = Diameter_estimate.run ~graph:g ~source:0 () in
        let ecc = r.Diameter_estimate.eccentricity in
        r.Diameter_estimate.estimate >= ecc
        && r.Diameter_estimate.estimate <= max 1 (2 * ecc));
    Test.make ~name:"barbell connected with expected diameter" ~count:60
      (pair (int_range 1 10) (int_range 0 10))
      (fun (clique, bridge) ->
        let g = Topo.barbell ~clique ~bridge in
        Bfs.is_connected g
        && Graph.n g = (2 * clique) + bridge
        && Bfs.diameter g <= bridge + 3);
    Test.make ~name:"handoff_fec round-trips any batch" ~count:30
      (pair (int_range 1 8) (int_range 0 5000))
      (fun (k, seed) ->
        let r = Rng.create ~seed in
        let g = Topo.star 6 in
        let msgs = Multi_broadcast.random_messages r ~k ~msg_len:16 in
        let res, decoded =
          Rings.handoff_fec ~rng:r ~graph:g ~holders:[| 0 |]
            ~receivers:[| 1; 2; 3; 4; 5 |] ~msgs ()
        in
        res.Rings.delivered
        &&
        match decoded with
        | Some out -> Array.for_all2 Bitvec.equal out msgs
        | None -> false);
    Test.make ~name:"thm 1.2 delivers for random (graph, k)" ~count:20
      (triple (int_range 2 40) (int_range 1 6) (int_range 0 5000))
      (fun (n, k, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra:n in
        let r = Multi_broadcast.known ~rng:(Rng.create ~seed:(seed + 1)) ~graph:g ~source:0 ~k () in
        r.Multi_broadcast.delivered && r.Multi_broadcast.payloads_ok);
  ]

let () =
  Alcotest.run "extras"
    [
      ( "diameter_estimate",
        [
          Alcotest.test_case "shapes" `Quick test_diameter_estimate_shapes;
          Alcotest.test_case "random graphs" `Quick test_diameter_estimate_random;
          Alcotest.test_case "power-of-two boundaries" `Quick
            test_diameter_estimate_power_of_two_boundary;
        ] );
      ( "strict_mode",
        [
          Alcotest.test_case "recruiting full budget" `Slow test_strict_recruiting;
          Alcotest.test_case "decay layering" `Slow test_strict_decay_layering;
          Alcotest.test_case "distributed gst" `Slow test_strict_gst_small;
        ] );
      ( "infection",
        [
          Alcotest.test_case "closure after broadcast" `Quick
            test_infection_closure_after_broadcast;
          Alcotest.test_case "probability one half" `Quick test_infection_halfway;
        ] );
      ( "edges",
        [
          Alcotest.test_case "rings wider than depth" `Quick
            test_rings_width_larger_than_depth;
          Alcotest.test_case "rings unreachable" `Quick test_rings_unreachable_nodes;
          Alcotest.test_case "one-node broadcast" `Quick test_single_broadcast_one_node;
          Alcotest.test_case "barbell broadcast" `Quick test_single_broadcast_barbell;
          Alcotest.test_case "assumption-free thm 1.1" `Quick
            test_single_broadcast_assumption_free;
          Alcotest.test_case "batch sizes" `Slow test_multi_unknown_batch_sizes;
          Alcotest.test_case "ring choices" `Slow test_multi_unknown_ring_choices;
          Alcotest.test_case "assumption-free thm 1.3" `Quick
            test_multi_unknown_assumption_free;
          Alcotest.test_case "handoff no holders" `Quick test_handoff_no_holders;
          Alcotest.test_case "handoff no receivers" `Quick test_handoff_no_receivers;
        ] );
      ( "misc",
        [
          Alcotest.test_case "barbell structure" `Quick test_barbell_structure;
          Alcotest.test_case "regular bipartite" `Quick test_bipartite_regular;
          Alcotest.test_case "jammed decay delivers" `Quick test_jammed_decay_delivers;
          Alcotest.test_case "jammer selection" `Quick test_jammers_exclude_source;
          Alcotest.test_case "p=0 jamming identity" `Quick test_jammer_p_zero_is_identity;
          Alcotest.test_case "step-reset delivery" `Quick test_step_reset_delivery;
          Alcotest.test_case "barbell zero bridge" `Quick test_barbell_zero_bridge;
          Alcotest.test_case "table" `Quick test_table_renders;
          Alcotest.test_case "cmsg pp" `Quick test_cmsg_pp;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
          Alcotest.test_case "fast-wave collision freedom" `Quick
            test_fast_wave_collision_freedom;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
