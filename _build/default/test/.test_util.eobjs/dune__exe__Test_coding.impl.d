test/test_coding.ml: Alcotest Array Bitvec Fec List QCheck QCheck_alcotest Rlnc Rn_coding Rn_util Rng Test
