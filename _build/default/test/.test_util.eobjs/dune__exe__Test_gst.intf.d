test/test_gst.mli:
