test/test_graph.ml: Alcotest Array Bfs Graph List Printf QCheck QCheck_alcotest Rn_graph Rn_util Rng String Test
