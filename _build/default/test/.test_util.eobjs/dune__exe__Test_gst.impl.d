test/test_gst.ml: Alcotest Array Bfs Graph Gst Ilog List Printf QCheck QCheck_alcotest Ranked_bfs Rn_broadcast Rn_graph Rn_util Rng Test
