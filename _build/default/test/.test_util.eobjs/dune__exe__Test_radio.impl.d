test/test_radio.ml: Alcotest Array Engine Format Graph List QCheck QCheck_alcotest Rn_graph Rn_radio Rn_util Test
