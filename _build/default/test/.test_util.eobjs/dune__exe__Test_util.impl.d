test/test_util.ml: Alcotest Array Gen Ilog List QCheck QCheck_alcotest Rn_util Rng Stats Test
