open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_broadcast

let rng seed = Rng.create ~seed

(* ------------------------------------------------------------------ *)
(* Ranked BFS *)

let test_ranks_path () =
  (* A path is a single stretch: every node rank 1. *)
  let parents = [| -1; 0; 1; 2 |] and levels = [| 0; 1; 2; 3 |] in
  Alcotest.(check (array int)) "all rank 1" [| 1; 1; 1; 1 |]
    (Ranked_bfs.ranks ~parents ~levels)

let test_ranks_binary_tree () =
  (* Complete binary tree of depth 2: leaves 1, mid 2, root 3. *)
  let parents = [| -1; 0; 0; 1; 1; 2; 2 |] and levels = [| 0; 1; 1; 2; 2; 2; 2 |] in
  Alcotest.(check (array int)) "ranks" [| 3; 2; 2; 1; 1; 1; 1 |]
    (Ranked_bfs.ranks ~parents ~levels)

let test_ranks_one_heavy_child () =
  (* Root with one rank-2 child and one rank-1 child keeps rank 2. *)
  let parents = [| -1; 0; 0; 1; 1 |] and levels = [| 0; 1; 1; 2; 2 |] in
  Alcotest.(check (array int)) "ranks" [| 2; 2; 1; 1; 1 |]
    (Ranked_bfs.ranks ~parents ~levels)

let test_ranks_outside_nodes () =
  let parents = [| -1; 0; -1 |] and levels = [| 0; 1; -1 |] in
  Alcotest.(check (array int)) "outsider rank 0" [| 1; 1; 0 |]
    (Ranked_bfs.ranks ~parents ~levels)

let test_ranks_bad_levels () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ranked_bfs.ranks ~parents:[| -1; 0 |] ~levels:[| 0; 2 |]);
       false
     with Invalid_argument _ -> true)

let test_subtree_sizes () =
  let parents = [| -1; 0; 0; 1; 1; 2; 2 |] in
  Alcotest.(check (array int)) "sizes" [| 7; 3; 3; 1; 1; 1; 1 |]
    (Ranked_bfs.subtree_sizes ~parents)

let test_check_rank_rule_detects_error () =
  let parents = [| -1; 0; 0 |] in
  (match Ranked_bfs.check_rank_rule ~parents ~ranks:[| 2; 1; 1 |] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Ranked_bfs.check_rank_rule ~parents ~ranks:[| 1; 1; 1 |] with
  | Ok () -> Alcotest.fail "should reject root rank 1 with two rank-1 children"
  | Error _ -> ()

(* Rank bound via subtree doubling: rank r needs >= 2^(r-1) nodes. *)
let test_rank_subtree_doubling () =
  let g = Topo.balanced_tree ~arity:2 ~depth:5 in
  let levels, parents = Bfs.levels_and_parents g ~src:0 in
  let ranks = Ranked_bfs.ranks ~parents ~levels in
  let sizes = Ranked_bfs.subtree_sizes ~parents in
  Array.iteri
    (fun v r ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d: 2^(r-1) <= size" v)
        true
        (Ilog.pow2 (r - 1) <= sizes.(v)))
    ranks

(* ------------------------------------------------------------------ *)
(* Centralized GST construction *)

let build g src = Gst.build_centralized ~graph:g ~roots:[| src |] ()

let check_valid name t =
  match Gst.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" name e)

let test_gst_path () =
  let t = build (Topo.path 6) 0 in
  check_valid "path" t;
  Alcotest.(check int) "single stretch: all rank 1" 1
    (Ranked_bfs.max_rank t.Gst.ranks);
  Alcotest.(check (array int)) "roots" [| 0 |] (Gst.roots t);
  Alcotest.(check int) "size" 6 (Gst.size t)

let test_gst_star () =
  let t = build (Topo.star 8) 0 in
  check_valid "star" t;
  Alcotest.(check int) "center rank 2" 2 t.Gst.ranks.(0);
  for v = 1 to 7 do
    Alcotest.(check int) "leaf rank 1" 1 t.Gst.ranks.(v)
  done

let test_gst_single_node () =
  let t = build (Topo.path 1) 0 in
  check_valid "single node" t;
  Alcotest.(check int) "rank" 1 t.Gst.ranks.(0)

let test_gst_complete () =
  let t = build (Topo.complete 9) 0 in
  check_valid "complete" t

let test_gst_grid () =
  let t = build (Topo.grid ~w:5 ~h:5) 0 in
  check_valid "grid" t

let test_gst_multi_root () =
  let g = Topo.grid ~w:6 ~h:3 in
  let t = Gst.build_centralized ~graph:g ~roots:[| 0; 1; 2 |] () in
  check_valid "multi root" t;
  Alcotest.(check (array int)) "roots kept" [| 0; 1; 2 |] (Gst.roots t)

let test_gst_ring_levels () =
  (* Build on a band of a path: nodes 2..5 of an 8-path, with ring-local
     levels; outside nodes must stay outside. *)
  let g = Topo.path 8 in
  let levels = Array.make 8 (-1) in
  for v = 2 to 5 do
    levels.(v) <- v - 2
  done;
  let t = Gst.build_centralized ~graph:g ~levels ~roots:[| 2 |] () in
  check_valid "band" t;
  Alcotest.(check bool) "node 0 outside" false (Gst.in_forest t 0);
  Alcotest.(check bool) "node 6 outside" false (Gst.in_forest t 6);
  Alcotest.(check int) "band size" 4 (Gst.size t)

let test_gst_stretches_path () =
  let t = build (Topo.path 5) 0 in
  Alcotest.(check bool) "root is head" true (Gst.is_stretch_head t 0);
  Alcotest.(check bool) "interior not head" false (Gst.is_stretch_head t 2);
  Alcotest.(check (list int)) "one stretch covers path" [ 0; 1; 2; 3; 4 ]
    (Gst.stretch_members t 0);
  Alcotest.(check (list int)) "non-head has no members" []
    (Gst.stretch_members t 3)

let test_gst_stretch_head_map () =
  let t = build (Topo.path 4) 0 in
  Alcotest.(check (array int)) "heads" [| 0; 0; 0; 0 |] (Gst.stretch_head_of t)

let test_virtual_distance_path () =
  (* Whole path is one stretch: every non-root node is one fast edge away. *)
  let t = build (Topo.path 6) 0 in
  let d = Gst.virtual_distances t in
  Alcotest.(check int) "root" 0 d.(0);
  for v = 1 to 5 do
    Alcotest.(check int) (Printf.sprintf "node %d" v) 1 d.(v)
  done

let test_virtual_distance_bound () =
  (* Lemma 3.4: d_u <= 2 ceil(log2 n) (+ repairs, which we count). *)
  let check g =
    let t = build g 0 in
    let d = Gst.virtual_distances t in
    let bound = (2 * Ilog.clog (max 2 (Graph.n g))) + Gst.override_count t in
    Array.iteri
      (fun v dv ->
        if Gst.in_forest t v then
          Alcotest.(check bool)
            (Printf.sprintf "d_%d=%d <= %d" v dv bound)
            true (dv <= bound))
      d
  in
  check (Topo.balanced_tree ~arity:3 ~depth:4);
  check (Topo.grid ~w:7 ~h:7);
  check (Topo.random_connected ~rng:(rng 5) ~n:100 ~extra:150)

let test_assign_level_pair_simple () =
  (* Two blues sharing one red: red adopts both, rank 2. *)
  let g = Graph.create ~n:3 ~edges:[ (0, 1); (0, 2) ] in
  let parents = Array.make 3 (-1) and ranks = [| 0; 1; 1 |] in
  Gst.assign_level_pair ~graph:g ~reds:[| 0 |] ~blues:[| 1; 2 |]
    ~blue_rank:(fun b -> ranks.(b))
    ~parents ~ranks;
  Alcotest.(check int) "blue 1 parent" 0 parents.(1);
  Alcotest.(check int) "blue 2 parent" 0 parents.(2);
  Alcotest.(check int) "red rank" 2 ranks.(0)

let test_assign_level_pair_loner_priority () =
  (* Blue 3 is a loner of red 1; red 0 sees blues 2,3.  Loner handling must
     assign 3 to 1... actually 3's only neighbor is 1, so 1 adopts it (and
     any other neighbors). *)
  let g = Graph.create ~n:4 ~edges:[ (0, 2); (1, 2); (1, 3) ] in
  let parents = Array.make 4 (-1) and ranks = [| 0; 0; 1; 1 |] in
  Gst.assign_level_pair ~graph:g ~reds:[| 0; 1 |] ~blues:[| 2; 3 |]
    ~blue_rank:(fun b -> ranks.(b))
    ~parents ~ranks;
  Alcotest.(check int) "loner assigned to its red" 1 parents.(3);
  Alcotest.(check bool) "blue 2 assigned" true (parents.(2) >= 0)

let test_assign_unreachable_blue_raises () =
  let g = Graph.create ~n:2 ~edges:[] in
  let parents = Array.make 2 (-1) and ranks = [| 0; 1 |] in
  Alcotest.(check bool) "raises" true
    (try
       Gst.assign_level_pair ~graph:g ~reds:[| 0 |] ~blues:[| 1 |]
         ~blue_rank:(fun b -> ranks.(b))
         ~parents ~ranks;
       false
     with Invalid_argument _ -> true)

(* Figure 1 regression: the paper's example graph admits a valid GST and our
   construction finds one (we model the 15-node two-branch shape). *)
let test_gst_figure1_like () =
  let g =
    Graph.create ~n:13
      ~edges:
        [
          (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (2, 6); (3, 7); (4, 8);
          (5, 9); (6, 10); (7, 11); (8, 12);
          (* cross edges that make naive rankings collide *)
          (3, 8); (4, 7); (5, 10); (6, 9);
        ]
  in
  let t = build g 0 in
  check_valid "figure-1-like" t

(* ------------------------------------------------------------------ *)
(* qcheck properties over the centralized construction *)

let arb_graph =
  QCheck.make
    ~print:(fun (n, extra, seed) ->
      Printf.sprintf "(n=%d,extra=%d,seed=%d)" n extra seed)
    QCheck.Gen.(triple (int_range 1 80) (int_range 0 120) (int_range 0 100_000))

let graph_of (n, extra, seed) =
  Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"centralized GST validates" ~count:300 arb_graph (fun spec ->
        let g = graph_of spec in
        let t = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        match Gst.validate t with Ok () -> true | Error _ -> false);
    Test.make ~name:"GST spans the graph" ~count:200 arb_graph (fun spec ->
        let g = graph_of spec in
        let t = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        Gst.size t = Graph.n g);
    Test.make ~name:"GST levels are BFS distances" ~count:200 arb_graph
      (fun spec ->
        let g = graph_of spec in
        let t = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        t.Gst.levels = Bfs.levels g ~src:0);
    Test.make ~name:"max rank <= ceil(log2 n)" ~count:300 arb_graph (fun spec ->
        let g = graph_of spec in
        let t = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        Ranked_bfs.max_rank t.Gst.ranks <= Ilog.clog (max 2 (Graph.n g)));
    Test.make ~name:"virtual distances within Lemma 3.4 bound" ~count:200
      arb_graph (fun spec ->
        let g = graph_of spec in
        let t = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        let d = Gst.virtual_distances t in
        let bound =
          (2 * Ilog.clog (max 2 (Graph.n g))) + Gst.override_count t
        in
        Array.for_all (fun dv -> dv <= bound) d);
    Test.make ~name:"every non-root reachable via parent chain" ~count:200
      arb_graph (fun spec ->
        let g = graph_of spec in
        let t = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        let ok = ref true in
        for v = 0 to Graph.n g - 1 do
          let rec walk u steps =
            if steps > Graph.n g then false
            else if t.Gst.parents.(u) < 0 then t.Gst.levels.(u) = 0
            else walk t.Gst.parents.(u) (steps + 1)
          in
          if not (walk v 0) then ok := false
        done;
        !ok);
    Test.make ~name:"multi-root band GSTs validate" ~count:150
      (pair arb_graph (int_range 1 5))
      (fun (spec, nroots) ->
        let g = graph_of spec in
        let n = Graph.n g in
        let nroots = min nroots n in
        let roots = Array.init nroots (fun i -> i) in
        let t = Gst.build_centralized ~graph:g ~roots () in
        match Gst.validate t with Ok () -> true | Error _ -> false);
  ]

let () =
  Alcotest.run "gst"
    [
      ( "ranked_bfs",
        [
          Alcotest.test_case "path ranks" `Quick test_ranks_path;
          Alcotest.test_case "binary tree ranks" `Quick test_ranks_binary_tree;
          Alcotest.test_case "one heavy child" `Quick test_ranks_one_heavy_child;
          Alcotest.test_case "outside nodes" `Quick test_ranks_outside_nodes;
          Alcotest.test_case "bad levels" `Quick test_ranks_bad_levels;
          Alcotest.test_case "subtree sizes" `Quick test_subtree_sizes;
          Alcotest.test_case "rank rule checker" `Quick
            test_check_rank_rule_detects_error;
          Alcotest.test_case "subtree doubling" `Quick test_rank_subtree_doubling;
        ] );
      ( "gst_centralized",
        [
          Alcotest.test_case "path" `Quick test_gst_path;
          Alcotest.test_case "star" `Quick test_gst_star;
          Alcotest.test_case "single node" `Quick test_gst_single_node;
          Alcotest.test_case "complete" `Quick test_gst_complete;
          Alcotest.test_case "grid" `Quick test_gst_grid;
          Alcotest.test_case "multi root" `Quick test_gst_multi_root;
          Alcotest.test_case "ring band levels" `Quick test_gst_ring_levels;
          Alcotest.test_case "stretches on path" `Quick test_gst_stretches_path;
          Alcotest.test_case "stretch head map" `Quick test_gst_stretch_head_map;
          Alcotest.test_case "virtual distance path" `Quick
            test_virtual_distance_path;
          Alcotest.test_case "virtual distance bound" `Quick
            test_virtual_distance_bound;
          Alcotest.test_case "assign simple" `Quick test_assign_level_pair_simple;
          Alcotest.test_case "assign loner" `Quick
            test_assign_level_pair_loner_priority;
          Alcotest.test_case "assign unreachable" `Quick
            test_assign_unreachable_blue_raises;
          Alcotest.test_case "figure-1-like graph" `Quick test_gst_figure1_like;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
