open Rn_graph
module Topo = Rn_graph.Gen
open Rn_radio

(* Deterministic scripted protocols: [script.(round).(node)] gives the
   action; receptions are recorded for inspection. *)
let scripted script log =
  let decide ~round ~node =
    if round < Array.length script then script.(round).(node) else Engine.Listen
  in
  let deliver ~round ~node reception = log := (round, node, reception) :: !log in
  { Engine.decide; deliver }

let reception_testable =
  let pp fmt = function
    | Engine.Silence -> Format.fprintf fmt "Silence"
    | Engine.Collision -> Format.fprintf fmt "Collision"
    | Engine.Received m -> Format.fprintf fmt "Received %d" m
  in
  Alcotest.testable pp ( = )

let find log round node =
  match
    List.find_opt (fun (r, v, _) -> r = round && v = node) !log
  with
  | Some (_, _, rec_) -> Some rec_
  | None -> None

let run ?stats ?after_round graph detection protocol ~rounds =
  Engine.run ?stats ?after_round ~graph ~detection ~protocol
    ~stop:(fun ~round:_ -> false)
    ~max_rounds:rounds ()

let path3 () = Topo.path 3 (* 0 - 1 - 2 *)
let star () = Topo.star 4 (* center 0; leaves 1,2,3 *)

let test_single_delivery () =
  let log = ref [] in
  let p = scripted [| [| Engine.Transmit 42; Engine.Listen; Engine.Listen |] |] log in
  ignore (run (path3 ()) Engine.Collision_detection p ~rounds:1);
  Alcotest.(check (option reception_testable)) "neighbor receives"
    (Some (Engine.Received 42)) (find log 0 1);
  Alcotest.(check (option reception_testable)) "non-neighbor silent"
    (Some Engine.Silence) (find log 0 2)

let test_transmitter_does_not_receive () =
  let log = ref [] in
  let p =
    scripted [| [| Engine.Transmit 1; Engine.Transmit 2; Engine.Listen |] |] log
  in
  ignore (run (path3 ()) Engine.Collision_detection p ~rounds:1);
  Alcotest.(check (option reception_testable)) "transmitter 0 hears nothing" None
    (find log 0 0);
  Alcotest.(check (option reception_testable)) "transmitter 1 hears nothing" None
    (find log 0 1);
  Alcotest.(check (option reception_testable)) "listener 2 receives from 1"
    (Some (Engine.Received 2)) (find log 0 2)

let test_collision_with_detection () =
  let log = ref [] in
  let p =
    scripted
      [| [| Engine.Listen; Engine.Transmit 1; Engine.Transmit 2; Engine.Transmit 3 |] |]
      log
  in
  ignore (run (star ()) Engine.Collision_detection p ~rounds:1);
  Alcotest.(check (option reception_testable)) "center detects collision"
    (Some Engine.Collision) (find log 0 0)

let test_collision_without_detection () =
  let log = ref [] in
  let p =
    scripted
      [| [| Engine.Listen; Engine.Transmit 1; Engine.Transmit 2; Engine.Transmit 3 |] |]
      log
  in
  ignore (run (star ()) Engine.No_collision_detection p ~rounds:1);
  Alcotest.(check (option reception_testable)) "collision looks like silence"
    (Some Engine.Silence) (find log 0 0)

let test_two_transmitters_distinct_listeners () =
  (* On a path, 0 and 2 both transmit: 1 sees a collision, but in a larger
     path each end-listener would receive cleanly; check both semantics. *)
  let g = Topo.path 5 in
  let log = ref [] in
  let p =
    scripted
      [|
        [|
          Engine.Listen; Engine.Transmit 10; Engine.Listen; Engine.Transmit 30;
          Engine.Listen;
        |];
      |]
      log
  in
  ignore (run g Engine.Collision_detection p ~rounds:1);
  Alcotest.(check (option reception_testable)) "left end clean"
    (Some (Engine.Received 10)) (find log 0 0);
  Alcotest.(check (option reception_testable)) "middle collides"
    (Some Engine.Collision) (find log 0 2);
  Alcotest.(check (option reception_testable)) "right end clean"
    (Some (Engine.Received 30)) (find log 0 4)

let test_sleep_no_delivery () =
  let log = ref [] in
  let p = scripted [| [| Engine.Transmit 5; Engine.Sleep; Engine.Listen |] |] log in
  ignore (run (path3 ()) Engine.Collision_detection p ~rounds:1);
  Alcotest.(check (option reception_testable)) "sleeper hears nothing" None
    (find log 0 1)

let test_stop_predicate () =
  let log = ref [] in
  let p = scripted [||] log in
  let outcome =
    Engine.run
      ~graph:(path3 ())
      ~detection:Engine.Collision_detection ~protocol:p
      ~stop:(fun ~round -> round >= 3)
      ~max_rounds:100 ()
  in
  Alcotest.(check int) "stops at 3" 3 (Engine.completed_exn outcome)

let test_budget_exhaustion () =
  let log = ref [] in
  let p = scripted [||] log in
  let outcome =
    Engine.run
      ~graph:(path3 ())
      ~detection:Engine.Collision_detection ~protocol:p
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:7 ()
  in
  (match outcome with
  | Engine.Out_of_budget r -> Alcotest.(check int) "budget" 7 r
  | Engine.Completed _ -> Alcotest.fail "expected budget exhaustion");
  Alcotest.(check bool) "completed_exn raises" true
    (try
       ignore (Engine.completed_exn outcome);
       false
     with Failure _ -> true)

let test_stats_counting () =
  let stats = Engine.fresh_stats () in
  let log = ref [] in
  let p =
    scripted
      [|
        (* round 0: two tx colliding at center of star; leaf 3 listens *)
        [| Engine.Listen; Engine.Transmit 1; Engine.Transmit 2; Engine.Listen |];
        (* round 1: single tx from center; all leaves listen *)
        [| Engine.Transmit 9; Engine.Listen; Engine.Listen; Engine.Listen |];
        (* round 2: idle *)
        [| Engine.Listen; Engine.Listen; Engine.Listen; Engine.Listen |];
      |]
      log
  in
  ignore (run ~stats (star ()) Engine.Collision_detection p ~rounds:3);
  Alcotest.(check int) "rounds" 3 stats.Engine.rounds;
  Alcotest.(check int) "transmissions" 3 stats.Engine.transmissions;
  Alcotest.(check int) "collisions (center, round 0)" 1 stats.Engine.collisions;
  Alcotest.(check int) "deliveries (3 leaves, round 1)" 3 stats.Engine.deliveries;
  Alcotest.(check int) "busy rounds" 2 stats.Engine.busy_rounds

let test_after_round_called () =
  let calls = ref [] in
  let log = ref [] in
  let p = scripted [||] log in
  ignore
    (run
       ~after_round:(fun ~round -> calls := round :: !calls)
       (path3 ()) Engine.Collision_detection p ~rounds:4);
  Alcotest.(check (list int)) "after_round per round" [ 3; 2; 1; 0 ] !calls

let test_on_round_events () =
  let seen = ref [] in
  let log = ref [] in
  let p = scripted [| [| Engine.Transmit 42; Engine.Listen; Engine.Listen |] |] log in
  ignore
    (Engine.run
       ~on_round:(fun ~round events -> seen := (round, events) :: !seen)
       ~graph:(path3 ())
       ~detection:Engine.Collision_detection ~protocol:p
       ~stop:(fun ~round:_ -> false)
       ~max_rounds:1 ());
  match !seen with
  | [ (0, events) ] ->
      let txs =
        List.filter (function Engine.Ev_transmit _ -> true | _ -> false) events
      in
      let rxs =
        List.filter (function Engine.Ev_receive _ -> true | _ -> false) events
      in
      Alcotest.(check int) "one tx event" 1 (List.length txs);
      Alcotest.(check int) "two rx events" 2 (List.length rxs)
  | _ -> Alcotest.fail "expected exactly one traced round"

let test_message_content_preserved () =
  (* Non-int messages flow through the polymorphic engine unchanged. *)
  let log = ref [] in
  let decide ~round ~node =
    if round = 0 && node = 0 then Engine.Transmit "hello" else Engine.Listen
  in
  let deliver ~round:_ ~node reception = log := (node, reception) :: !log in
  ignore
    (Engine.run
       ~graph:(path3 ())
       ~detection:Engine.Collision_detection
       ~protocol:{ Engine.decide; deliver }
       ~stop:(fun ~round:_ -> false)
       ~max_rounds:1 ());
  let got =
    List.exists (fun (v, r) -> v = 1 && r = Engine.Received "hello") !log
  in
  Alcotest.(check bool) "string payload intact" true got

let qcheck_tests =
  let open QCheck in
  [
    (* Reception semantics invariant: a listener's reception is exactly
       determined by the number of transmitting neighbors. *)
    Test.make ~name:"reception matches transmitter count" ~count:200
      (pair (int_range 2 30) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Rn_util.Rng.create ~seed in
        let g = Topo.random_connected ~rng ~n ~extra:n in
        let tx = Array.init n (fun _ -> Rn_util.Rng.bool rng) in
        let observed = Array.make n None in
        let decide ~round:_ ~node =
          if tx.(node) then Engine.Transmit node else Engine.Listen
        in
        let deliver ~round:_ ~node reception = observed.(node) <- Some reception in
        ignore
          (Engine.run ~graph:g ~detection:Engine.Collision_detection
             ~protocol:{ Engine.decide; deliver }
             ~stop:(fun ~round:_ -> false)
             ~max_rounds:1 ());
        let ok = ref true in
        for v = 0 to n - 1 do
          let txn =
            Graph.fold_neighbors g v
              (fun acc u -> if tx.(u) then acc + 1 else acc)
              0
          in
          (match (tx.(v), observed.(v)) with
          | true, None -> ()
          | true, Some _ -> ok := false
          | false, Some Engine.Silence -> if txn <> 0 then ok := false
          | false, Some (Engine.Received u) ->
              if txn <> 1 then ok := false
              else if not (Graph.mem_edge g v u) then ok := false
          | false, Some Engine.Collision -> if txn < 2 then ok := false
          | false, None -> ok := false);
          ()
        done;
        !ok);
  ]

let () =
  Alcotest.run "rn_radio"
    [
      ( "engine",
        [
          Alcotest.test_case "single delivery" `Quick test_single_delivery;
          Alcotest.test_case "half-duplex" `Quick test_transmitter_does_not_receive;
          Alcotest.test_case "collision with CD" `Quick test_collision_with_detection;
          Alcotest.test_case "collision without CD" `Quick
            test_collision_without_detection;
          Alcotest.test_case "spatial reuse" `Quick
            test_two_transmitters_distinct_listeners;
          Alcotest.test_case "sleep" `Quick test_sleep_no_delivery;
          Alcotest.test_case "stop predicate" `Quick test_stop_predicate;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "stats" `Quick test_stats_counting;
          Alcotest.test_case "after_round" `Quick test_after_round_called;
          Alcotest.test_case "on_round events" `Quick test_on_round_events;
          Alcotest.test_case "polymorphic payloads" `Quick
            test_message_content_preserved;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
