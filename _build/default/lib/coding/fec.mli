(** Forward error correction for the ring handoff (§3.4).

    When a batch of k' messages crosses from the outer boundary of one ring
    to the inner boundary of the next, boundary nodes emit Θ(k') coded
    packets such that any receiver that collects enough of them decodes the
    whole batch.  As the paper notes, this is a degenerate form of network
    coding (no intermediate recombination), so we realize it with random
    GF(2) combinations: [k' + slack] random packets decode w.h.p.; the
    [slack] accounts for the ~0.71 probability that a random k'×k' GF(2)
    matrix is singular. *)

val encode :
  Rn_util.Rng.t -> msgs:Bitvec.t array -> count:int -> Rlnc.packet array
(** [count] independent uniformly random combinations of the batch
    (zero rows are re-drawn, so every packet is useful). *)

val decoder : k:int -> msg_len:int -> Rlnc.t
(** A fresh decoder for a batch; feed it packets with {!Rlnc.receive} and
    extract with {!Rlnc.decode}. *)

val packets_needed : k:int -> whp_slack:int -> int
(** [k + whp_slack]; receiving this many random packets decodes with
    probability ≥ 1 - 2^{-whp_slack}. *)
