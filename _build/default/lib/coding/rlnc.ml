type packet = { coeffs : Bitvec.t; payload : Bitvec.t }

let source_packet ~msgs i =
  let k = Array.length msgs in
  if i < 0 || i >= k then invalid_arg "Rlnc.source_packet";
  { coeffs = Bitvec.unit k i; payload = Bitvec.copy msgs.(i) }

let packet_of_coeffs ~msgs coeffs =
  let k = Array.length msgs in
  if Bitvec.length coeffs <> k then invalid_arg "Rlnc.packet_of_coeffs";
  let msg_len = if k = 0 then 0 else Bitvec.length msgs.(0) in
  let payload = Bitvec.create msg_len in
  for i = 0 to k - 1 do
    if Bitvec.get coeffs i then Bitvec.xor_into ~dst:payload msgs.(i)
  done;
  { coeffs; payload }

let packet_bits p = Bitvec.length p.coeffs + Bitvec.length p.payload

(* Row-echelon basis: [rows.(p)] is [Some row] whose coefficient vector has
   its lowest set bit at position [p] and zeros below [p] in all other
   stored rows (full reduction), so rank queries and decoding are O(k). *)
type t = {
  k : int;
  msg_len : int;
  rows : packet option array; (* indexed by pivot position *)
  mutable rank : int;
}

let create ~k ~msg_len =
  if k < 0 || msg_len < 0 then invalid_arg "Rlnc.create";
  { k; msg_len; rows = Array.make (max k 1) None; rank = 0 }

let k t = t.k

let reduce t coeffs payload =
  (* Eliminate every bit sitting at an existing pivot position (ascending
     is enough: stored rows are fully reduced, so each xor only introduces
     bits at non-pivot positions at or above the current one). *)
  let c = Bitvec.copy coeffs and p = Bitvec.copy payload in
  for pos = 0 to t.k - 1 do
    if Bitvec.get c pos then
      match t.rows.(pos) with
      | Some row ->
          Bitvec.xor_into ~dst:c row.coeffs;
          Bitvec.xor_into ~dst:p row.payload
      | None -> ()
  done;
  { coeffs = c; payload = p }

let receive t pkt =
  if Bitvec.length pkt.coeffs <> t.k then
    invalid_arg "Rlnc.receive: coefficient length mismatch";
  if Bitvec.length pkt.payload <> t.msg_len then
    invalid_arg "Rlnc.receive: payload length mismatch";
  let residual = reduce t pkt.coeffs pkt.payload in
  match Bitvec.first_set residual.coeffs with
  | None -> false
  | Some pivot ->
      (* Back-substitute the new pivot into every stored row to keep the
         basis fully reduced. *)
      Array.iteri
        (fun i row ->
          match row with
          | Some r when i <> pivot && Bitvec.get r.coeffs pivot ->
              Bitvec.xor_into ~dst:r.coeffs residual.coeffs;
              Bitvec.xor_into ~dst:r.payload residual.payload
          | Some _ | None -> ())
        t.rows;
      t.rows.(pivot) <- Some residual;
      t.rank <- t.rank + 1;
      true

let rank t = t.rank

let can_decode t = t.rank = t.k

let encode rng t =
  if t.rank = 0 then None
  else begin
    let coeffs = Bitvec.create t.k and payload = Bitvec.create t.msg_len in
    Array.iter
      (fun row ->
        match row with
        | Some r when Rn_util.Rng.bool rng ->
            Bitvec.xor_into ~dst:coeffs r.coeffs;
            Bitvec.xor_into ~dst:payload r.payload
        | Some _ | None -> ())
      t.rows;
    Some { coeffs; payload }
  end

let decode t =
  if not (can_decode t) then None
  else begin
    (* Fully reduced basis with rank = k means rows.(i) has coefficient
       vector e_i, so its payload is exactly message i. *)
    let msgs =
      Array.init t.k (fun i ->
          match t.rows.(i) with
          | Some r ->
              assert (Bitvec.equal r.coeffs (Bitvec.unit t.k i));
              Bitvec.copy r.payload
          | None -> assert false)
    in
    Some msgs
  end

let infected t mu =
  if Bitvec.length mu <> t.k then invalid_arg "Rlnc.infected";
  Array.exists
    (fun row -> match row with Some r -> Bitvec.dot r.coeffs mu | None -> false)
    t.rows

let seed_with_sources t ~msgs =
  if Array.length msgs <> t.k then invalid_arg "Rlnc.seed_with_sources";
  Array.iteri (fun i _ -> ignore (receive t (source_packet ~msgs i))) msgs

let basis_coeffs t =
  Array.to_list t.rows
  |> List.filter_map (function Some r -> Some (Bitvec.copy r.coeffs) | None -> None)
