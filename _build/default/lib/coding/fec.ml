let encode rng ~msgs ~count =
  let k = Array.length msgs in
  if count < 0 then invalid_arg "Fec.encode";
  let rec nonzero_coeffs () =
    let c = Bitvec.random rng k in
    if Bitvec.is_zero c && k > 0 then nonzero_coeffs () else c
  in
  Array.init count (fun _ -> Rlnc.packet_of_coeffs ~msgs (nonzero_coeffs ()))

let decoder ~k ~msg_len = Rlnc.create ~k ~msg_len

let packets_needed ~k ~whp_slack =
  if k < 0 || whp_slack < 0 then invalid_arg "Fec.packets_needed";
  k + whp_slack
