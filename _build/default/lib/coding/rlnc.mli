(** Random linear network coding over GF(2) (§3.3.1 of the paper).

    The [k] broadcast messages are bit vectors m₁…m_k ∈ F₂^l.  A coded
    packet carries a coefficient vector α ∈ F₂^k together with the linear
    combination Σ αᵢ·mᵢ ∈ F₂^l.  A node stores the packets it has received;
    whenever it is prompted to send, it transmits a fresh uniformly random
    combination of its stored packets; once the received coefficient vectors
    span F₂^k it reconstructs every message by Gaussian elimination.

    The module also implements the {e infection} notion used by the
    projection analysis (Definition 3.8): a node is infected by μ ∈ F₂^k if
    it holds a packet whose coefficient vector is not orthogonal to μ. *)

type packet = { coeffs : Bitvec.t; payload : Bitvec.t }
(** Coefficient vector of length [k], payload of length [l]. *)

val source_packet : msgs:Bitvec.t array -> int -> packet
(** [source_packet ~msgs i] is the uncoded packet for message [i]
    (coefficients = eᵢ). *)

val packet_of_coeffs : msgs:Bitvec.t array -> Bitvec.t -> packet
(** Build the packet a sender with full knowledge would produce for the
    given coefficient vector. *)

val packet_bits : packet -> int
(** Wire size of a coded packet: coefficient header plus payload.  With
    generation (batch) size [k = Θ(log n)] this is [Θ(log n) + payload]
    bits, the point of the paper's footnote 5 / §3.4 batching; coding over
    all [k] messages at once (the known-topology setting, where headers
    can be computed offline and omitted) would cost [k] header bits. *)

type t
(** Decoder / buffer state of one node. *)

val create : k:int -> msg_len:int -> t

val k : t -> int

val receive : t -> packet -> bool
(** Store a packet; returns [true] iff it was {e innovative} (increased the
    rank of the received coefficient space).  Malformed packets (wrong
    lengths) raise [Invalid_argument]. *)

val rank : t -> int

val can_decode : t -> bool
(** [rank t = k]. *)

val encode : Rn_util.Rng.t -> t -> packet option
(** A uniformly random packet from the span of the stored packets, [None]
    when nothing has been received yet.  The zero combination is permitted
    (it is a valid, vacuous packet), matching the model where a prompted
    node always transmits. *)

val decode : t -> Bitvec.t array option
(** All [k] messages, once [can_decode]. *)

val infected : t -> Bitvec.t -> bool
(** [infected t mu]: some stored coefficient vector has ⟨μ, c⟩ ≠ 0.
    Equivalent to μ not being orthogonal to the received span. *)

val seed_with_sources : t -> msgs:Bitvec.t array -> unit
(** Give a node (the source) all [k] messages at once. *)

val basis_coeffs : t -> Bitvec.t list
(** Current row-reduced basis of the coefficient space (for tests). *)
