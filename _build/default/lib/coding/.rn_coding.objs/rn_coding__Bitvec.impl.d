lib/coding/bitvec.ml: Array List Rn_util String
