lib/coding/fec.ml: Array Bitvec Rlnc
