lib/coding/rlnc.ml: Array Bitvec List Rn_util
