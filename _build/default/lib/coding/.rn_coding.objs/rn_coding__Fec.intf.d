lib/coding/fec.mli: Bitvec Rlnc Rn_util
