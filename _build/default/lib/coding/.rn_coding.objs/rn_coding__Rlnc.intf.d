lib/coding/rlnc.mli: Bitvec Rn_util
