lib/coding/bitvec.mli: Rn_util
