open Rn_graph

type detection = Collision_detection | No_collision_detection

type 'msg action = Sleep | Listen | Transmit of 'msg

type 'msg reception = Silence | Collision | Received of 'msg

type 'msg protocol = {
  decide : round:int -> node:int -> 'msg action;
  deliver : round:int -> node:int -> 'msg reception -> unit;
}

type stats = {
  mutable rounds : int;
  mutable transmissions : int;
  mutable deliveries : int;
  mutable collisions : int;
  mutable busy_rounds : int;
}

let fresh_stats () =
  { rounds = 0; transmissions = 0; deliveries = 0; collisions = 0; busy_rounds = 0 }

type outcome = Completed of int | Out_of_budget of int

let rounds_of_outcome = function Completed r | Out_of_budget r -> r

let completed_exn = function
  | Completed r -> r
  | Out_of_budget r ->
      failwith (Printf.sprintf "Engine: run exhausted its %d-round budget" r)

type 'msg trace_event =
  | Ev_transmit of { node : int; msg : 'msg }
  | Ev_receive of { node : int; reception : 'msg reception }

let run ?stats ?on_round ?after_round ~graph ~detection ~protocol ~stop ~max_rounds () =
  let n = Graph.n graph in
  (* Per-node scratch reused across rounds; [touched] lists the nodes whose
     counters must be reset, so quiet rounds cost O(n) and nothing more. *)
  let tx_count = Array.make n 0 in
  let tx_msg = Array.make n None in
  let listening = Array.make n false in
  let transmitters = ref [] in
  let listeners = ref [] in
  let touched = ref [] in
  let record_stat f = match stats with None -> () | Some s -> f s in
  let rec loop round =
    if stop ~round then Completed round
    else if round >= max_rounds then Out_of_budget round
    else begin
      transmitters := [];
      listeners := [];
      let events = ref [] in
      let tracing = on_round <> None in
      for v = 0 to n - 1 do
        match protocol.decide ~round ~node:v with
        | Sleep -> listening.(v) <- false
        | Listen ->
            listening.(v) <- true;
            listeners := v :: !listeners
        | Transmit msg ->
            listening.(v) <- false;
            transmitters := (v, msg) :: !transmitters;
            if tracing then events := Ev_transmit { node = v; msg } :: !events
      done;
      let tx_happened = !transmitters <> [] in
      List.iter
        (fun (t, msg) ->
          record_stat (fun s -> s.transmissions <- s.transmissions + 1);
          Graph.iter_neighbors graph t (fun v ->
              if listening.(v) then begin
                if tx_count.(v) = 0 then begin
                  touched := v :: !touched;
                  tx_msg.(v) <- Some msg
                end;
                tx_count.(v) <- tx_count.(v) + 1
              end))
        !transmitters;
      List.iter
        (fun v ->
          let reception =
            match tx_count.(v) with
            | 0 -> Silence
            | 1 -> (
                record_stat (fun s -> s.deliveries <- s.deliveries + 1);
                match tx_msg.(v) with
                | Some m -> Received m
                | None -> assert false)
            | _ -> (
                record_stat (fun s -> s.collisions <- s.collisions + 1);
                match detection with
                | Collision_detection -> Collision
                | No_collision_detection -> Silence)
          in
          if tracing then events := Ev_receive { node = v; reception } :: !events;
          protocol.deliver ~round ~node:v reception)
        !listeners;
      List.iter
        (fun v ->
          tx_count.(v) <- 0;
          tx_msg.(v) <- None)
        !touched;
      touched := [];
      record_stat (fun s ->
          s.rounds <- s.rounds + 1;
          if tx_happened then s.busy_rounds <- s.busy_rounds + 1);
      (match on_round with
      | Some f -> f ~round (List.rev !events)
      | None -> ());
      (match after_round with Some f -> f ~round | None -> ());
      loop (round + 1)
    end
  in
  loop 0
