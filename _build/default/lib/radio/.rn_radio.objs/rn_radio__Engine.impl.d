lib/radio/engine.ml: Array Graph List Printf Rn_graph
