lib/radio/engine.mli: Rn_graph
