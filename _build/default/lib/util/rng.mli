(** Deterministic, splittable pseudo-random number generator.

    Every protocol in this library draws randomness exclusively through this
    module, so that any simulation is reproducible from a single integer
    seed.  The generator is SplitMix64 (Steele, Lea & Flood 2014): a small,
    fast, statistically solid 64-bit generator whose defining feature is
    cheap splitting, which we use to hand every simulated node an
    independent stream. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a fresh generator from [seed].  Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives a new generator whose future output is independent of
    [t]'s; both generators advance independently afterwards. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators (one per node). *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy replays [t]'s future. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct values from
    [\[0, n)], in uniformly random order.  Requires [0 <= k <= n]. *)
