(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables so that every experiment prints
    the same kind of rows the paper's claims are checked against. *)

type t

val create : title:string -> columns:string list -> t
(** A new table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_int_row : t -> (string * int list) -> unit
(** Convenience: a label cell followed by integer cells. *)

val print : t -> unit
(** Render to stdout with column alignment and a title banner. *)

val csv_dir : string option ref
(** When set, {!print} also writes each table as a CSV file named after a
    slug of its title into this directory (created if missing) — used by
    [bench/main.exe --csv DIR] so plots can be regenerated. *)

val cell_f : float -> string
(** Format a float cell compactly ("123", "12.3", "1.23"). *)

val note : string -> unit
(** Print a single indented commentary line (shape verdicts etc.). *)

val section : string -> unit
(** Print a section banner (one per experiment id). *)
