type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  (* Mix once more so that parent and child streams are decorrelated even
     for adjacent integer seeds. *)
  let s = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 33)) 0xFF51AFD7ED558CCDL in
  { state = s }

let split_n t n = Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (bits64 t) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher–Yates over an index array: O(n) setup, exact. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
