lib/util/rng.mli:
