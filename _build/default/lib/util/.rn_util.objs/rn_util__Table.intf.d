lib/util/table.mli:
