lib/util/table.ml: Filename Float List Printf String Sys
