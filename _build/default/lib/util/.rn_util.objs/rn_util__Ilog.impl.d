lib/util/ilog.ml:
