lib/util/stats.mli:
