lib/util/ilog.mli:
