(** Descriptive statistics and least-squares fitting for experiment tables.

    The benchmark harness reports medians and dispersion over seeded runs,
    and fits simple linear models to validate the paper's asymptotic shapes
    (e.g. that measured rounds grow like [a·D + b] with [a] constant). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary
(** Descriptive summary of a non-empty sample.  @raise Invalid_argument on
    an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val median : float array -> float
(** Median (average of the two central order statistics for even sizes). *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation. *)

type fit = { slope : float; intercept : float; r2 : float }

val linear_fit : (float * float) list -> fit
(** Ordinary least squares [y = slope·x + intercept] with the coefficient of
    determination [r2].  Needs at least two distinct x values. *)

type fit2 = { a : float; b : float; c : float; r2_2 : float }

val two_predictor_fit : (float * float * float) list -> fit2
(** Ordinary least squares [y = a·x1 + b·x2 + c] over points
    [(x1, x2, y)], with its coefficient of determination.  Used to check
    composite complexity shapes such as [rounds ≈ a·(D·log n) + b·log² n].
    Needs at least three points with non-degenerate predictors.
    @raise Invalid_argument when the normal equations are singular. *)

val ratio_spread : (float * float) list -> float * float
(** [ratio_spread pts] returns [(mean, max/min)] of the per-point ratios
    [y/x]; a small spread indicates y ∝ x.  Points with [x = 0] are
    skipped. *)

val of_ints : int array -> float array
