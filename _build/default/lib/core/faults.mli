(** Fault injection: intermittent jammers.

    The MMV framework (Definition 3.1) models {e protocol-internal} noise:
    scheduled nodes without the message transmit garbage.  This module
    injects {e adversarial} noise on top of any protocol: designated
    jammer nodes transmit a noise packet with probability [p] each round
    (regardless of what the protocol scheduled), and otherwise behave
    normally.  Keeping the non-jamming behaviour intact preserves
    connectivity, so the measurement isolates noise resilience — the
    property the backwards analysis says Decay-style schedules have.

    Used by the failure-injection tests and experiment E13. *)

open Rn_util
open Rn_radio

type spec = { jammers : int array; p : float }
(** Which nodes jam, and with what per-round probability. *)

val with_jammers :
  rng:Rng.t ->
  jammers:int array ->
  p:float ->
  noise:'msg ->
  'msg Engine.protocol ->
  'msg Engine.protocol
(** [with_jammers ~rng ~jammers ~p ~noise proto] wraps [proto]: each node
    listed in [jammers] transmits [noise] with probability [p] in every
    round, and delegates to [proto] otherwise.  Deliveries during a
    jamming round are suppressed for the jammer itself (it is
    transmitting); other nodes' receptions are garbled by the engine's
    normal collision semantics. *)

val pick_jammers :
  rng:Rng.t -> n:int -> count:int -> exclude:int array -> int array
(** [count] distinct jammer ids drawn uniformly from [\[0, n)] minus
    [exclude] (e.g. the source).  @raise Invalid_argument if there are not
    enough candidates. *)
