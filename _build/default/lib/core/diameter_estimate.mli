(** Distributed 2-approximation of the diameter (footnote 2, via the beep
    waves of [10]).

    The paper assumes nodes know [D] up to a constant factor and notes the
    assumption is removable in [O(D)] rounds with collision detection.
    This module implements that tool with a doubling protocol; each guess
    [T] costs [2T + 2] rounds:

    + {e forward wave}, rounds [0..T-1] of the guess: the source beeps in
      round 0; a node that first hears {e anything} (message or ⊤) in
      round [r] learns level [r + 1] and beeps once in round [r + 1] —
      a single-shot collision wave covering all levels [≤ T];
    + {e coverage probe}, round [T]: every still-unreached node beeps;
      reached nodes listen, so exactly the nodes on the boundary of the
      covered region hear that the guess was too small;
    + {e aligned echo}, rounds [T+1 .. 2T+1]: a reached node at level [l]
      beeps in the slot [2T + 1 - l] if the probe told it the wave was
      unfinished or if it heard an echo beep in the previous slot.  Each
      level owns one slot, deeper levels first, so the OR of all "too
      small" bits flows to the source in exactly [T + 1] rounds (collisions
      only reinforce the bit — this is what collision detection buys).

    The source doubles [T] until no echo arrives; then
    [ecc(source) ≤ T < 2·ecc(source)] (unless the true eccentricity was
    hit exactly, in which case [T] may equal it), and [ecc ≤ D ≤ 2·ecc]
    gives the 2-approximation of [D].  Total cost [O(D)] rounds. *)


type result = {
  estimate : int;  (** the final guess [T]: [ecc ≤ T ≤ 2·ecc] *)
  eccentricity : int;  (** true eccentricity, for reference *)
  rounds : int;  (** total rounds over all guesses *)
  levels : int array;  (** BFS levels learned as a side effect *)
}

val run :
  ?max_rounds:int -> graph:Rn_graph.Graph.t -> source:int -> unit -> result
(** Requires a connected graph and collision detection.
    @raise Failure if the doubling never converges within [max_rounds]
    (only possible on a disconnected graph). *)
