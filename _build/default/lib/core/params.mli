(** Explicit constants behind the paper's Θ(·) round budgets.

    Every schedule length in the paper is "Θ(log n)" phases, "Θ(log² n)"
    iterations, and so on.  For finite simulations the hidden constants
    matter: they trade failure probability against round count.  This
    record makes each constant an explicit, documented parameter;
    [default] is tuned so that all with-high-probability events succeed in
    practice at the network sizes used by the test-suite and benchmarks
    (n ≤ 2¹⁰) while keeping simulations fast.  The budgets look generous
    (e.g. [c_recruit = 12]) because a Θ(log n)-firing schedule with
    constant per-firing success needs a large constant before its failure
    probability is negligible at n ≈ 2⁶; adaptive early exit means the
    typical cost is far below these caps.

    [adaptive = true] lets multi-phase constructions stop a sub-protocol as
    soon as its goal is (observably, via the simulator's global view)
    achieved instead of always running the full worst-case budget.  This is
    a simulation-level device: it only shortens schedules whose remaining
    rounds would be no-ops, so the protocol outcome distribution for the
    achieved goal is unchanged; fixed-budget runs ([adaptive = false])
    reproduce the paper's exact round structure. *)

type t = {
  c_whp : int;
      (** Decay phases for a w.h.p. delivery: [c_whp · ⌈log n⌉] phases
          (paper: Θ(log n), Lemma 2.2). *)
  c_recruit : int;
      (** Recruiting iterations: [c_recruit · ⌈log n⌉²] (paper: Θ(log² n),
          Lemma 2.3). *)
  c_epochs : int;
      (** Assignment epochs per rank: [c_epochs · ⌈log n⌉] (paper:
          Θ(log n), §2.2.3). *)
  adaptive : bool;  (** allow early exit of already-achieved phases *)
  whp_slack : int;
      (** extra FEC packets / extra decay phases for boundary handoffs *)
  max_round_factor : int;
      (** global simulation budget: [max_round_factor] × the predicted
          asymptotic round count; exceeded budgets are reported as
          failures rather than looping forever *)
}

val default : t

val phase_len : n:int -> int
(** Length of one Decay phase: the paper's [⌈log n⌉] (at least 1). *)

val whp_phases : t -> n:int -> int
val recruit_iterations : t -> n:int -> int
val max_epochs : t -> n:int -> int
