(** Packet vocabulary of the distributed GST construction (§2.2).

    Every packet fits the model's [B = Ω(log n)] bits: at most two node ids
    plus a small tag.  One shared type keeps the layering, recruiting,
    assignment and virtual-distance stages composable inside a single
    engine run (needed for pipelining, §2.2.4). *)

type t =
  | Beacon  (** content-free transmission (collision wave, "empty message") *)
  | Probe  (** BFS-layering relay token *)
  | Blue_here  (** an unassigned blue of the current rank announces itself *)
  | Loner_here  (** a loner blue informs adjacent reds (Stage I) *)
  | Red_id of int  (** recruiting, announce round: red's id *)
  | Claim of { blue : int; red : int }
      (** recruiting, Decay rounds: blue echoes the red it heard *)
  | Confirm of { red : int; blue : int }
      (** recruiting, confirm round: red heard exactly [blue] *)
  | Sigma of int
      (** recruiting, confirm round: red heard (or already has) ≥ 2 *)
  | Marked of { red : int; rank : int }
      (** Stage III: a freshly ranked red announces id and rank *)
  | Vd_label of { from_node : int; vd : int }
      (** virtual-distance learning (Lemma 3.10) *)

val pp : Format.formatter -> t -> unit

val bits : n:int -> t -> int
(** Size of the packet in bits under the model's encoding: tags cost
    O(1), node ids and small integers [⌈log₂ n⌉] bits each.  Every
    construction packet fits [B = Θ(log n)] (§1.1); the test-suite audits
    this. *)
