open Rn_util
open Rn_radio

type spec = { jammers : int array; p : float }

let with_jammers ~rng ~jammers ~p ~noise (proto : 'msg Engine.protocol) =
  let jam_rng = Hashtbl.create (Array.length jammers) in
  Array.iter (fun v -> Hashtbl.replace jam_rng v (Rng.split rng)) jammers;
  let decide ~round ~node =
    match Hashtbl.find_opt jam_rng node with
    | Some r when Rng.bernoulli r p -> Engine.Transmit noise
    | Some _ | None -> proto.Engine.decide ~round ~node
  in
  { Engine.decide; deliver = proto.Engine.deliver }

let pick_jammers ~rng ~n ~count ~exclude =
  if count < 0 then invalid_arg "Faults.pick_jammers";
  let banned = Array.to_list exclude in
  let candidates =
    Array.of_list
      (List.filter (fun v -> not (List.mem v banned)) (List.init n (fun i -> i)))
  in
  if count > Array.length candidates then
    invalid_arg "Faults.pick_jammers: not enough candidates";
  Rng.shuffle rng candidates;
  Array.sub candidates 0 count
