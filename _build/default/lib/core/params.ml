open Rn_util

type t = {
  c_whp : int;
  c_recruit : int;
  c_epochs : int;
  adaptive : bool;
  whp_slack : int;
  max_round_factor : int;
}

let default =
  {
    c_whp = 8;
    c_recruit = 12;
    c_epochs = 8;
    adaptive = true;
    whp_slack = 10;
    max_round_factor = 64;
  }

let phase_len ~n = Ilog.clog (max 2 n)

let whp_phases t ~n = t.c_whp * Ilog.clog (max 2 n)

let recruit_iterations t ~n =
  let l = Ilog.clog (max 2 n) in
  t.c_recruit * l * l

let max_epochs t ~n = t.c_epochs * Ilog.clog (max 2 n)
