open Rn_util
open Rn_graph
open Rn_radio

type mode = Sequential | Pipelined

type layering_spec =
  | Decay_layering
  | Collision_wave_layering
  | Given_layering of int array

type result = {
  gst : Gst.t;
  parent_rank : int array;
  vd : int array;
  layering_rounds : int;
  assignment_rounds : int;
  selftest_rounds : int;
  vd_rounds : int;
  total_rounds : int;
  class_fixups : int;
  fallback_reactivations : int;
}

(* ------------------------------------------------------------------ *)
(* Phase 2: level-pair assignments *)

let run_assignment ~mode ~params ~detection ~rng ~graph ~levels () =
  let n = Graph.n graph in
  let scale_n = n in
  let depth = Bfs.max_level levels in
  let parents = Array.make n (-1) in
  let ranks = Array.make n 0 in
  let parent_rank = Array.make n (-1) in
  if depth <= 0 then begin
    (* No level pairs: every root is a leaf. *)
    Array.iteri (fun v l -> if l = 0 then ranks.(v) <- 1) levels;
    (parents, ranks, parent_rank, 0, 0, 0)
  end
  else begin
    let at_level l = Bfs.nodes_at_level levels l in
    (* Deepest level: all leaves. *)
    Array.iter (fun v -> ranks.(v) <- 1) (at_level depth);
    let leaf_inited = Array.make (depth + 1) false in
    leaf_inited.(depth) <- true;
    let blocks = Array.make (depth + 1) None in
    let block l = match blocks.(l) with Some b -> b | None -> assert false in
    let finished_pair l = Bipartite_assignment.finished (block l) in
    let leaf_init l =
      if not leaf_inited.(l) then begin
        Array.iter (fun v -> if ranks.(v) = 0 then ranks.(v) <- 1) (at_level l);
        leaf_inited.(l) <- true
      end
    in
    let ready_for l ~rank =
      if l = depth then true
      else begin
        let below = block (l + 1) in
        let fin = Bipartite_assignment.finished below in
        (* Leaf ranks at level [l] become final the moment pair [l+1] is
           done; install them lazily before our rank-1 phase starts. *)
        if fin then leaf_init l;
        fin || Bipartite_assignment.current_rank below < rank - 1
      end
    in
    for l = 1 to depth do
      blocks.(l) <-
        Some
          (Bipartite_assignment.create ~rng:(Rng.split rng) ~params ~scale_n
             ~graph ~reds:(at_level (l - 1)) ~blues:(at_level l) ~parents
             ~ranks ~parent_rank ~ready:(ready_for l) ())
    done;
    let current = ref depth (* sequential cursor *) in
    let all_done () =
      let rec go l = l < 1 || (finished_pair l && go (l - 1)) in
      go depth
    in
    let owner_block ~round ~node =
      let l = levels.(node) in
      if l < 0 then None
      else
        match mode with
        | Sequential ->
            let c = !current in
            if (l = c || l = c - 1) && not (finished_pair c) then Some (block c)
            else None
        | Pipelined ->
            let slot = round mod 3 in
            if l >= 1 && l <= depth && l mod 3 = slot && not (finished_pair l)
            then Some (block l)
            else if
              l + 1 >= 1
              && l + 1 <= depth
              && (l + 1) mod 3 = slot
              && not (finished_pair (l + 1))
            then Some (block (l + 1))
            else None
    in
    let decide ~round ~node =
      match owner_block ~round ~node with
      | Some b -> Bipartite_assignment.decide b ~node
      | None -> Engine.Sleep
    in
    let deliver ~round ~node reception =
      match owner_block ~round ~node with
      | Some b -> Bipartite_assignment.deliver b ~node reception
      | None -> ()
    in
    let after_round ~round =
      match mode with
      | Sequential ->
          let c = !current in
          if not (finished_pair c) then Bipartite_assignment.advance (block c);
          while !current > 1 && finished_pair !current do
            leaf_init (!current - 1);
            decr current
          done
      | Pipelined ->
          let slot = round mod 3 in
          for l = 1 to depth do
            if l mod 3 = slot && not (finished_pair l) then
              Bipartite_assignment.advance (block l)
          done
    in
    let ladder = Ilog.clog (max 2 scale_n) in
    let max_rounds =
      params.Params.max_round_factor * ((depth + 2) * Ilog.pow ladder 5)
      + 10_000
    in
    let outcome =
      Engine.run ~graph ~detection
        ~protocol:{ Engine.decide; deliver }
        ~after_round
        ~stop:(fun ~round:_ -> all_done ())
        ~max_rounds ()
    in
    let rounds =
      match outcome with
      | Engine.Completed r -> r
      | Engine.Out_of_budget _ ->
          failwith "Gst_distributed: assignment phase exhausted its budget"
    in
    leaf_init 0;
    let fixups =
      Array.fold_left
        (fun acc b ->
          match b with
          | Some b -> acc + Bipartite_assignment.class_fixups b
          | None -> acc)
        0 blocks
    in
    let fallbacks =
      Array.fold_left
        (fun acc b ->
          match b with
          | Some b -> acc + Bipartite_assignment.fallback_reactivations b
          | None -> acc)
        0 blocks
    in
    (parents, ranks, parent_rank, rounds, fixups, fallbacks)
  end

(* ------------------------------------------------------------------ *)
(* Phase 3: wave-safety self-test *)

let run_selftest ~detection ~graph ~levels ~parents ~ranks () =
  let n = Graph.n graph in
  let max_rank = Array.fold_left max 0 ranks in
  let safe = Array.make n true in
  let listens = Array.make n false in
  (* Round s: rank s/3 + 1, transmitter layer class s mod 3. *)
  let total = 3 * max_rank in
  let decide ~round ~node =
    let r = (round / 3) + 1 and c = round mod 3 in
    let l = levels.(node) in
    if l < 0 || ranks.(node) <> r then Engine.Sleep
    else if l mod 3 = c then
      Engine.Transmit (Cmsg.Marked { red = node; rank = r })
    else begin
      let p = parents.(node) in
      if p >= 0 && ranks.(p) = r && (l - 1) mod 3 = c then begin
        listens.(node) <- true;
        Engine.Listen
      end
      else Engine.Sleep
    end
  in
  let deliver ~round:_ ~node reception =
    (* The parent certainly transmitted, so anything but a clean reception
       of exactly the parent betrays a same-rank contender. *)
    match reception with
    | Engine.Received (Cmsg.Marked { red; rank = _ }) ->
        if red <> parents.(node) then safe.(node) <- false
    | Engine.Received _ | Engine.Silence | Engine.Collision ->
        safe.(node) <- false
  in
  let outcome =
    Engine.run ~graph ~detection
      ~protocol:{ Engine.decide; deliver }
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:total ()
  in
  let head_override = Array.init n (fun v -> listens.(v) && not safe.(v)) in
  (head_override, Engine.rounds_of_outcome outcome)

(* ------------------------------------------------------------------ *)
(* Phase 4: virtual-distance learning (Lemma 3.10) *)

let run_vd ~params ~detection ~rng ~graph ~levels ~parents ~ranks
    ~parent_rank ~head_override () =
  let n = Graph.n graph in
  let scale_n = n in
  let ladder = Params.phase_len ~n:scale_n in
  let depth = Bfs.max_level levels in
  let max_rank = Array.fold_left max 0 ranks in
  let vd = Array.make n (-1) in
  Array.iteri
    (fun v l -> if l = 0 && ranks.(v) > 0 then vd.(v) <- 0)
    levels;
  let in_forest v = levels.(v) >= 0 && ranks.(v) > 0 in
  let is_head v =
    in_forest v
    && (parents.(v) < 0 || head_override.(v) || parent_rank.(v) <> ranks.(v))
  in
  let unlabeled_remain () =
    let rec go v = v < n && ((in_forest v && vd.(v) < 0) || go (v + 1)) in
    go 0
  in
  let node_rng = Rng.split_n rng n in
  let total_rounds = ref 0 in
  (* One d-iteration: stretch sweeps for every rank, then Decay
     relaxation.  [swept] marks nodes labeled d+1 by the current sweep so
     epoch 2 only cascades fresh labels. *)
  let d = ref 0 in
  let iter_cap = (3 * ladder) + n in
  let run_phase ~decide ~deliver ~stop ~max_rounds =
    let outcome =
      Engine.run ~graph ~detection
        ~protocol:{ Engine.decide; deliver }
        ~stop ~max_rounds ()
    in
    total_rounds := !total_rounds + Engine.rounds_of_outcome outcome
  in
  while unlabeled_remain () && !d <= iter_cap do
    let dv = !d in
    (* Stage 1: label whole stretches hanging off F_dv, rank by rank. *)
    for r = 1 to max_rank do
      let sweep_hit = Array.make n false in
      let heads_exist =
        let rec go v =
          v < n
          && ((is_head v && vd.(v) = dv && ranks.(v) = r) || go (v + 1))
        in
        go 0
      in
      if heads_exist || not params.Params.adaptive then begin
        (* Epoch 1 then epoch 2, each a D-round layer sweep. *)
        let epoch_len = depth + 1 in
        let decide ~round ~node =
          let epoch = round / epoch_len and l = round mod epoch_len in
          if not (in_forest node) then Engine.Sleep
          else if
            levels.(node) = l && ranks.(node) = r
            && ((epoch = 0 && is_head node && vd.(node) = dv)
               || (epoch = 1 && sweep_hit.(node)))
          then Engine.Transmit (Cmsg.Vd_label { from_node = node; vd = dv })
          else if
            levels.(node) = l + 1
            && ranks.(node) = r
            && vd.(node) < 0
            && (not (is_head node))
            && parents.(node) >= 0
          then Engine.Listen
          else Engine.Sleep
        in
        let deliver ~round:_ ~node reception =
          match reception with
          | Engine.Received (Cmsg.Vd_label { from_node; vd = _ })
            when from_node = parents.(node) && vd.(node) < 0 ->
              vd.(node) <- dv + 1;
              sweep_hit.(node) <- true
          | Engine.Received _ | Engine.Silence | Engine.Collision -> ()
        in
        run_phase ~decide ~deliver
          ~stop:(fun ~round:_ -> false)
          ~max_rounds:(2 * epoch_len)
      end
    done;
    (* Stage 2: Decay relaxation across ordinary G-edges. *)
    let budget = Params.whp_phases params ~n:scale_n * ladder in
    let goal () =
      Array.for_all
        (fun v ->
          (not (in_forest v))
          || vd.(v) >= 0
          || not
               (Graph.fold_neighbors graph v
                  (fun acc u -> acc || (in_forest u && vd.(u) = dv))
                  false))
        (Array.init n (fun i -> i))
    in
    let decide ~round ~node =
      if in_forest node && vd.(node) = dv then begin
        let p = 1.0 /. float_of_int (1 lsl min ((round mod ladder) + 1) 62) in
        if Rng.bernoulli node_rng.(node) p then
          Engine.Transmit (Cmsg.Vd_label { from_node = node; vd = dv })
        else Engine.Listen
      end
      else if in_forest node && vd.(node) < 0 then Engine.Listen
      else Engine.Sleep
    in
    let deliver ~round:_ ~node reception =
      match reception with
      | Engine.Received (Cmsg.Vd_label _) when vd.(node) < 0 ->
          vd.(node) <- dv + 1
      | Engine.Received _ | Engine.Silence | Engine.Collision -> ()
    in
    run_phase ~decide ~deliver
      ~stop:(fun ~round ->
        params.Params.adaptive && round mod ladder = 0 && goal ())
      ~max_rounds:budget;
    incr d
  done;
  if unlabeled_remain () then
    failwith "Gst_distributed: virtual-distance learning did not converge";
  (vd, !total_rounds)

(* ------------------------------------------------------------------ *)

let construct ?(mode = Pipelined) ?(layering = Decay_layering)
    ?(learn_vd = false) ?(params = Params.default)
    ?(detection = Engine.No_collision_detection) ~rng ~graph ~roots () =
  let n = Graph.n graph in
  let levels, layering_rounds =
    match layering with
    | Given_layering levels ->
        if Array.length levels <> n then
          invalid_arg "Gst_distributed.construct: levels length";
        (levels, 0)
    | Decay_layering ->
        let r = Layering.decay_bfs ~params ~rng:(Rng.split rng) ~graph ~sources:roots () in
        (r.Layering.levels, r.Layering.rounds)
    | Collision_wave_layering ->
        let r = Layering.collision_wave ~graph ~sources:roots () in
        (r.Layering.levels, r.Layering.rounds)
  in
  let parents, ranks, parent_rank, assignment_rounds, class_fixups,
      fallback_reactivations =
    run_assignment ~mode ~params ~detection ~rng ~graph ~levels ()
  in
  let head_override, selftest_rounds =
    run_selftest ~detection ~graph ~levels ~parents ~ranks ()
  in
  let vd, vd_rounds =
    if learn_vd then
      run_vd ~params ~detection ~rng ~graph ~levels ~parents ~ranks
        ~parent_rank ~head_override ()
    else (Array.make n (-1), 0)
  in
  let gst = Gst.make ~graph ~levels ~parents ~ranks ~head_override () in
  {
    gst;
    parent_rank;
    vd;
    layering_rounds;
    assignment_rounds;
    selftest_rounds;
    vd_rounds;
    total_rounds = layering_rounds + assignment_rounds + selftest_rounds + vd_rounds;
    class_fixups;
    fallback_reactivations;
  }
