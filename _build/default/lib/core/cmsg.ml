type t =
  | Beacon
  | Probe
  | Blue_here
  | Loner_here
  | Red_id of int
  | Claim of { blue : int; red : int }
  | Confirm of { red : int; blue : int }
  | Sigma of int
  | Marked of { red : int; rank : int }
  | Vd_label of { from_node : int; vd : int }

let pp fmt = function
  | Beacon -> Format.fprintf fmt "Beacon"
  | Probe -> Format.fprintf fmt "Probe"
  | Blue_here -> Format.fprintf fmt "Blue_here"
  | Loner_here -> Format.fprintf fmt "Loner_here"
  | Red_id r -> Format.fprintf fmt "Red_id %d" r
  | Claim { blue; red } -> Format.fprintf fmt "Claim{blue=%d; red=%d}" blue red
  | Confirm { red; blue } -> Format.fprintf fmt "Confirm{red=%d; blue=%d}" red blue
  | Sigma r -> Format.fprintf fmt "Sigma %d" r
  | Marked { red; rank } -> Format.fprintf fmt "Marked{red=%d; rank=%d}" red rank
  | Vd_label { from_node; vd } -> Format.fprintf fmt "Vd{from=%d; vd=%d}" from_node vd

let bits ~n t =
  let id = Rn_util.Ilog.clog (max 2 n) in
  let tag = 4 in
  tag
  +
  match t with
  | Beacon | Probe | Blue_here | Loner_here -> 0
  | Red_id _ | Sigma _ -> id
  | Claim _ | Confirm _ | Marked _ | Vd_label _ -> 2 * id
