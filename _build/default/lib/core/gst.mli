(** Gathering Spanning Trees (§2.1) and their centralized construction.

    A GST is a ranked BFS tree (or forest, for ring decompositions whose
    whole inner boundary acts as the source) satisfying the
    collision-freeness property: whenever two blue nodes u₁, u₂ of rank r
    have distinct parents v₁, v₂ that also have rank r, there is no edge
    v₁–u₂ or v₂–u₁ (Figure 3).  Maximal same-rank root-ward chains are
    {e fast stretches}; the broadcast schedules pipeline packets along them
    collision-free while Decay-style randomized steps cross between
    stretches.

    {b Wave-safety repair.}  The collision-freeness property above (the one
    Lemma 2.5 actually establishes) leaves one corner open: a node [x] can
    acquire rank r purely from two rank-(r−1) children while also being
    adjacent to a stretch-{e interior} node u₂ whose parent has rank r; the
    fast transmissions of [x] and of u₂'s parent then share a slot and
    collide at u₂, breaking the pipelined wave.  We close the gap with a
    local repair: such a u₂ is flagged [head_override], making it the head
    of its own (shorter) stretch, served by slow transmissions.  This only
    shortens stretches; ranks and levels are untouched, and the number of
    stretches along a root path grows by the (empirically near-zero, see
    experiment E9) number of overrides.  DESIGN.md §4 records this
    deviation. *)

open Rn_graph

type t = private {
  graph : Graph.t;
  levels : int array;  (** [-1] = outside the forest *)
  parents : int array;  (** [-1] = root or outside *)
  ranks : int array;  (** [0] = outside; in-forest ranks are ≥ 1 *)
  head_override : bool array;  (** wave-safety repairs, see above *)
}

val make :
  graph:Graph.t ->
  levels:int array ->
  parents:int array ->
  ranks:int array ->
  ?head_override:bool array ->
  unit ->
  t
(** Bundle the parts; array lengths must equal [Graph.n graph]. *)

val in_forest : t -> int -> bool
val roots : t -> int array
val size : t -> int
(** Number of in-forest nodes. *)

val is_stretch_head : t -> int -> bool
(** True when the node starts a fast stretch: it is a root, its parent has
    a different rank, or it is wave-safety overridden. *)

val stretch_head_of : t -> int array
(** For each in-forest node, the head of its stretch ([-1] outside). *)

val stretch_members : t -> int -> int list
(** All nodes of the stretch headed at the given node (including the head);
    empty if the node is not a head. *)

val virtual_distances : t -> int array
(** Distances from the roots in the virtual graph G′ of §3.2.1: all edges
    of G (between in-forest nodes, both directions) plus a directed fast
    edge from every stretch head to every other node of its stretch.
    Lemma 3.4 bounds these by [2⌈log n⌉] (+ overrides). *)

(** {1 Validity checkers} *)

val check_structure : t -> (unit, string) result
(** Parents are graph neighbors one level up; roots sit at level 0; ranks
    are positive exactly on forest nodes; every non-root level is
    reachable. *)

val check_ranks : t -> (unit, string) result
(** The inductive ranking rule (§2.1) holds at every node, and the maximum
    rank is at most [⌈log₂ n⌉]. *)

val collision_violations : t -> (int * int * int * int) list
(** Quadruples [(u1, v1, u2, v2)] violating collision-freeness (the
    property Lemma 2.5 proves w.h.p. for the distributed construction). *)

val wave_unsafe : t -> (int * int) list
(** Pairs [(u, x)] where [u] is a stretch-interior node and [x ≠ parent u]
    is a same-rank neighbor one level up — exactly the configurations whose
    fast transmissions would collide at [u].  Empty after
    {!repair_wave_safety}. *)

val validate : t -> (unit, string) result
(** [check_structure] + [check_ranks] + no collision violations + no wave
    hazards. *)

(** {1 Centralized construction} *)

val assign_level_pair :
  graph:Graph.t ->
  reds:int array ->
  blues:int array ->
  blue_rank:(int -> int) ->
  parents:int array ->
  ranks:int array ->
  unit
(** Solve one Bipartite Assignment Problem (§2.2.2) sequentially: give every
    blue a red parent, rank adopting reds by the GST rule, keep the
    assignment collision-free.  Greedy: process blue ranks descending;
    repeatedly let one red — preferring parents of {e loner} blues, else a
    red with the most unassigned same-rank blue neighbors — adopt {e all}
    its unassigned blues of the current rank (plus any unassigned
    lower-rank blues, mirroring Stage III).  Writes [parents.(blue)] and
    [ranks.(red)] in place.  Used by {!build_centralized} and as the
    reference the distributed construction is tested against. *)

val build_centralized :
  graph:Graph.t -> ?levels:int array -> roots:int array -> unit -> t
(** Build a GST forest level by level from the deepest level upward, as in
    Gasieniec–Peleg–Xin [7] (known-topology setting, Theorem 1.2).
    [levels] defaults to the multi-source BFS layering from [roots];
    passing ring-relative levels builds a ring GST.  The result is
    wave-safety repaired and satisfies {!validate}. *)

val repair_wave_safety : t -> t
(** Flag every stretch-interior node with an ambiguous same-rank upstream
    as a stretch head (see module preamble). *)

val override_count : t -> int
