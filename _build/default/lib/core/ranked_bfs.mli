(** Ranked BFS trees (§2.1).

    Given a BFS tree (or forest) with per-node levels and parents, nodes are
    ranked by the inductive rule: a leaf has rank 1; an internal node whose
    children's maximum rank [r] is achieved by exactly one child gets rank
    [r], and with two or more such children gets rank [r + 1].  The largest
    rank is at most [⌈log₂ n⌉] (each rank increase doubles the subtree's
    weight). *)

val ranks : parents:int array -> levels:int array -> int array
(** [ranks ~parents ~levels] computes the rank of every node of a BFS
    forest.  [parents.(v) = -1] for roots; nodes with [levels.(v) < 0] are
    outside the forest and receive rank 0.  @raise Invalid_argument if a
    parent's level is not exactly one less than its child's. *)

val max_rank : int array -> int

val subtree_sizes : parents:int array -> int array
(** Number of nodes in each node's subtree (used by the rank-bound
    argument and tests). *)

val check_rank_rule :
  parents:int array -> ranks:int array -> (unit, string) result
(** Verifies the inductive ranking rule node by node. *)
