lib/core/faults.mli: Engine Rn_radio Rn_util Rng
