lib/core/baselines.ml: Array Cmsg Decay Engine Graph Params Rn_graph Rn_radio Rn_util Rng
