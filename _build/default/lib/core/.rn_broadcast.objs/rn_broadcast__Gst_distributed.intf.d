lib/core/gst_distributed.mli: Engine Gst Params Rn_graph Rn_radio Rn_util Rng
