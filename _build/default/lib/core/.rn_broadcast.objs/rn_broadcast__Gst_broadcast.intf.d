lib/core/gst_broadcast.mli: Bitvec Engine Faults Gst Params Rn_coding Rn_radio Rn_util Rng
