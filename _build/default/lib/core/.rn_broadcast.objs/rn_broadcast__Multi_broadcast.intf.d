lib/core/multi_broadcast.mli: Bitvec Gst_broadcast Params Rn_coding Rn_graph Rn_util Rng Single_broadcast
