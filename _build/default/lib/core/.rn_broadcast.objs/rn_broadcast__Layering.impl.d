lib/core/layering.ml: Array Cmsg Engine Graph Params Rn_graph Rn_radio Rn_util Rng
