lib/core/recruiting.mli: Cmsg Engine Params Rn_graph Rn_radio Rn_util Rng
