lib/core/baselines.mli: Decay Engine Params Rn_graph Rn_radio Rn_util Rng
