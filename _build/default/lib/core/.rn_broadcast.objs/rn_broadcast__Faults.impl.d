lib/core/faults.ml: Array Engine Hashtbl List Rn_radio Rn_util Rng
