lib/core/params.ml: Ilog Rn_util
