lib/core/bipartite_assignment.mli: Cmsg Engine Params Rn_graph Rn_radio Rn_util Rng
