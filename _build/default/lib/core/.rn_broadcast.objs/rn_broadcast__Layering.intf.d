lib/core/layering.mli: Engine Params Rn_graph Rn_radio Rn_util Rng
