lib/core/cmsg.ml: Format Rn_util
