lib/core/decay.ml: Array Engine Faults Graph Ilog Params Rn_graph Rn_radio Rn_util Rng
