lib/core/rings.ml: Array Bfs Bitvec Cmsg Engine Fec Graph List Params Rlnc Rn_coding Rn_graph Rn_radio Rn_util Rng
