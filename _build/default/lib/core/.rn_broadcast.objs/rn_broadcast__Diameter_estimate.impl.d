lib/core/diameter_estimate.ml: Array Bfs Cmsg Engine Graph Rn_graph Rn_radio
