lib/core/bipartite_assignment.ml: Array Cmsg Engine Graph Ilog List Params Recruiting Rn_graph Rn_radio Rn_util Rng
