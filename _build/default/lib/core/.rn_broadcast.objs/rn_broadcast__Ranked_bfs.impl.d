lib/core/ranked_bfs.ml: Array List Printf Queue
