lib/core/gst.mli: Graph Rn_graph
