lib/core/single_broadcast.mli: Gst_distributed Params Rn_graph Rn_util Rng
