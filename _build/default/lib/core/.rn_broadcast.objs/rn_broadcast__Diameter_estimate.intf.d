lib/core/diameter_estimate.mli: Rn_graph
