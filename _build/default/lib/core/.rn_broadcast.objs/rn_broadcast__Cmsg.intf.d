lib/core/cmsg.mli: Format
