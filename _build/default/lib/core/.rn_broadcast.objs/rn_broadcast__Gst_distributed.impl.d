lib/core/gst_distributed.ml: Array Bfs Bipartite_assignment Cmsg Engine Graph Gst Ilog Layering Params Rn_graph Rn_radio Rn_util Rng
