lib/core/recruiting.ml: Array Cmsg Engine Graph Hashtbl List Params Rn_graph Rn_radio Rn_util Rng
