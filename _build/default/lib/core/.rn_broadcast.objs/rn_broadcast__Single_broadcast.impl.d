lib/core/single_broadcast.ml: Array Bfs Bitvec Diameter_estimate Graph Gst_broadcast Gst_distributed Ilog Layering List Params Rings Rn_coding Rn_graph Rn_radio Rn_util Rng
