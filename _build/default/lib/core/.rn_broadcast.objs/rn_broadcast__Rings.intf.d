lib/core/rings.mli: Bitvec Params Rn_coding Rn_graph Rn_util Rng
