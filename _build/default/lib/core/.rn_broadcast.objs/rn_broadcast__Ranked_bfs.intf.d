lib/core/ranked_bfs.mli:
