lib/core/gst.ml: Array Bfs Graph Hashtbl Ilog List Printf Queue Ranked_bfs Rn_graph Rn_util
