lib/core/gst_broadcast.ml: Array Bfs Bitvec Engine Faults Graph Gst Ilog Params Rlnc Rn_coding Rn_graph Rn_radio Rn_util Rng
