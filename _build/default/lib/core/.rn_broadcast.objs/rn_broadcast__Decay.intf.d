lib/core/decay.mli: Engine Faults Params Rn_graph Rn_radio Rn_util Rng
