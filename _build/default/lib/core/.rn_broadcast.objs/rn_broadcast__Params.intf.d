lib/core/params.mli:
