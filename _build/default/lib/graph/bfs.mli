(** Breadth-first search, distances, diameter and connectivity.

    BFS layerings are the backbone of every construction in the paper: the
    GST is a ranked BFS tree (§2.1), the collision wave of §2.3 computes a
    BFS layering, and ring decompositions group consecutive BFS layers. *)

val levels : Graph.t -> src:int -> int array
(** [levels g ~src] gives the hop distance from [src] to every node; [-1]
    for unreachable nodes. *)

val multi_levels : Graph.t -> sources:int array -> int array
(** Hop distance to the nearest source ([-1] if unreachable); the layering
    used for ring-local GST forests, where every inner-boundary node is a
    root. *)

val levels_and_parents : Graph.t -> src:int -> int array * int array
(** As [levels], plus one BFS parent per node ([-1] for [src] and
    unreachable nodes).  The parent chosen is the smallest-id neighbor on
    the previous level (deterministic). *)

val eccentricity : Graph.t -> int -> int
(** Largest finite distance from the node.  @raise Invalid_argument if the
    graph is disconnected from that node. *)

val diameter : Graph.t -> int
(** Exact diameter by all-pairs BFS; intended for the simulation sizes used
    here (n ≤ a few thousand).  @raise Invalid_argument if disconnected. *)

val is_connected : Graph.t -> bool
(** A graph with no nodes counts as connected. *)

val nodes_at_level : int array -> int -> int array
(** [nodes_at_level levels l] lists the nodes [v] with [levels.(v) = l], in
    increasing id order. *)

val max_level : int array -> int
(** Largest entry of a level array (the depth of the layering); [-1] when
    empty. *)
