(** Topology generators for experiments and tests.

    The benchmark harness needs workloads where network size [n] and
    diameter [D] vary independently (the paper's bounds separate the two):
    [layered_random] and [cluster_path] provide that control, while
    [unit_disk] models the physical sensor deployments that motivate radio
    networks, and the small deterministic shapes exercise edge cases. *)

open Rn_util

val path : int -> Graph.t
(** Path on [n ≥ 1] nodes: diameter [n-1]. *)

val cycle : int -> Graph.t
(** Cycle on [n ≥ 3] nodes. *)

val star : int -> Graph.t
(** Star with center [0] and [n-1] leaves, [n ≥ 1]. *)

val complete : int -> Graph.t
(** Clique on [n ≥ 1] nodes: diameter 1, maximal collisions. *)

val grid : w:int -> h:int -> Graph.t
(** [w × h] grid, nodes in row-major order. *)

val balanced_tree : arity:int -> depth:int -> Graph.t
(** Complete [arity]-ary tree of the given [depth] (root = node 0,
    depth 0 = just the root). *)

val caterpillar : spine:int -> legs:int -> Graph.t
(** A path of [spine] nodes, each with [legs] pendant leaves — long
    diameter with local contention. *)

val gnp : rng:Rng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi G(n,p); may be disconnected. *)

val random_connected : rng:Rng.t -> n:int -> extra:int -> Graph.t
(** Uniform random spanning tree (random attachment) plus [extra] random
    non-tree edges; always connected. *)

val layered_random :
  rng:Rng.t -> depth:int -> width:int -> p:float -> Graph.t
(** Node 0 is a source followed by [depth] layers of [width] nodes; every
    node has at least one neighbor in the previous layer and further
    previous-layer links with probability [p].  BFS level of a node equals
    its layer, so diameter is exactly [depth]; [n = 1 + depth·width].  The
    main workload for sweeping [D] and [n] independently. *)

val cluster_path :
  rng:Rng.t -> clusters:int -> size:int -> p_intra:float -> Graph.t
(** A chain of [clusters] dense clusters of [size] nodes (intra-cluster
    edges with probability [p_intra], forced connectivity), consecutive
    clusters joined by a single bridge edge — dense local collisions along a
    long path. *)

val barbell : clique:int -> bridge:int -> Graph.t
(** Two [clique]-cliques joined by a path of [bridge] extra nodes: extreme
    contention at both ends of a long thin corridor.  [clique ≥ 1],
    [bridge ≥ 0]; nodes [0..clique) and the last [clique] ids form the
    cliques. *)

val unit_disk : rng:Rng.t -> n:int -> radius:float -> Graph.t
(** [n] points uniform in the unit square, edges within Euclidean distance
    [radius].  Disconnected components are stitched by adding the shortest
    inter-component link, so the result is always connected (documented
    deviation from a pure disk graph, needed for broadcast workloads). *)

val bipartite_random :
  rng:Rng.t -> reds:int -> blues:int -> p:float -> Graph.t
(** Random bipartite graph for exercising the recruiting protocol: reds are
    nodes [0..reds), blues are [reds..reds+blues); each blue gets at least
    one red neighbor, plus each red–blue pair independently with
    probability [p]. *)

val bipartite_regular :
  rng:Rng.t -> reds:int -> blues:int -> degree:int -> Graph.t
(** Blue-regular bipartite graph: every blue gets exactly [degree]
    distinct red neighbors, chosen uniformly ([1 ≤ degree ≤ reds]).
    The regular-degree workload for recruiting experiments (all loner /
    no loner regimes are selected exactly by [degree]). *)

val dot : Graph.t -> string
(** Graphviz rendering (undirected), for the examples. *)
