type t = { adj : int array array; m : int }

let create ~n ~edges =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: node %d out of range [0,%d)" v n)
  in
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check u;
      check v;
      if u <> v then begin
        buckets.(u) <- v :: buckets.(u);
        buckets.(v) <- u :: buckets.(v)
      end)
    edges;
  let dedup l =
    let a = Array.of_list l in
    Array.sort compare a;
    let out = ref [] in
    Array.iter
      (fun v -> match !out with w :: _ when w = v -> () | _ -> out := v :: !out)
      a;
    let arr = Array.of_list !out in
    (* [out] was built largest-first; restore ascending order. *)
    let len = Array.length arr in
    Array.init len (fun i -> arr.(len - 1 - i))
  in
  let adj = Array.map dedup buckets in
  let deg_sum = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj in
  { adj; m = deg_sum / 2 }

let n t = Array.length t.adj
let m t = t.m
let degree t v = Array.length t.adj.(v)
let neighbors t v = t.adj.(v)

let iter_neighbors t v f = Array.iter f t.adj.(v)

let fold_neighbors t v f init = Array.fold_left f init t.adj.(v)

let mem_edge t u v =
  let a = t.adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch 0 (Array.length a)

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun u a -> Array.iter (fun v -> if u < v then acc := (u, v) :: !acc) a)
    t.adj;
  List.rev !acc

let max_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.adj

let induced_bipartite g ~left ~right =
  let nl = Array.length left and nr = Array.length right in
  let back = Array.append left right in
  let fwd = Hashtbl.create (nl + nr) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v (`L, i)) left;
  Array.iteri (fun i v -> Hashtbl.replace fwd v (`R, nl + i)) right;
  let es = ref [] in
  Array.iteri
    (fun i u ->
      iter_neighbors g u (fun v ->
          match Hashtbl.find_opt fwd v with
          | Some (`R, j) -> es := (i, j) :: !es
          | Some (`L, _) | None -> ()))
    left;
  ignore nr;
  (create ~n:(nl + nr) ~edges:!es, back)

let pp fmt t = Format.fprintf fmt "graph(n=%d, m=%d)" (n t) t.m
