lib/graph/gen.ml: Array Bfs Buffer Graph List Printf Rn_util Rng
