lib/graph/bfs.mli: Graph
