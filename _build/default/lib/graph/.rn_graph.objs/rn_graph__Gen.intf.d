lib/graph/gen.mli: Graph Rn_util Rng
